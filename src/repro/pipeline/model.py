"""Analytic pipeline-overlap model.

The staged engine (:mod:`repro.pipeline.engine`) measures, for every
micro-batch, how long each stage took: block generation (CPU wall),
feature staging (CPU wall), and compute (CPU wall for the numpy
forward/backward plus the simulated device seconds the cost model
charges for the transfer and kernels).  This module turns those
per-item stage durations into the two numbers the paper-style
comparison needs:

* :func:`sequential_time` — the strictly serial schedule of
  Algorithm 2 as written: every stage of every micro-batch on the
  critical path;
* :func:`pipeline_makespan` — the bounded producer/consumer schedule:
  stage ``s`` of item ``i`` starts once item ``i-1`` left the stage,
  item ``i`` left stage ``s-1``, *and* the depth-limited queue ahead
  has a free slot (blocking-put semantics).

Both are pure functions of the measured durations, so the modeled
speedup is deterministic — independent of how many cores the host
happens to have — while the threaded engine realizes it physically
where the hardware allows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class StageTiming:
    """Measured stage durations of one micro-batch, in seconds.

    Attributes:
        block_gen_s: wall seconds of fast block generation.
        staging_s: wall seconds of the host-side feature gather.
        compute_s: wall seconds of forward/backward plus the simulated
            device seconds (feature transfer + kernels) of this
            micro-batch.
    """

    block_gen_s: float
    staging_s: float
    compute_s: float

    @property
    def total_s(self) -> float:
        return self.block_gen_s + self.staging_s + self.compute_s

    def stages(self) -> tuple[float, float, float]:
        return (self.block_gen_s, self.staging_s, self.compute_s)


def sequential_time(timings: list[StageTiming]) -> float:
    """Serial epoch model: every stage of every item back to back."""
    return sum(t.total_s for t in timings)


def pipeline_makespan(timings: list[StageTiming], depth: int) -> float:
    """Makespan of the 3-stage pipeline with ``depth``-bounded queues.

    Recurrence (``s`` indexes stages, ``i`` items; ``c[s][i]`` is the
    completion time of stage ``s`` for item ``i``)::

        start[s][i] = max(c[s][i-1],          # stage busy with i-1
                          c[s-1][i],          # item not yet produced
                          start[s+1][i-depth])  # queue ahead is full
        c[s][i]     = start[s][i] + d[s][i]

    The third term models the blocking put of a ``Queue(maxsize=depth)``:
    the producer cannot begin item ``i`` until the consumer has dequeued
    item ``i - depth``.  With ``depth`` large this degenerates to the
    classic unbounded-pipeline bound; with one item it degenerates to
    (almost) the sequential schedule.
    """
    if depth < 1:
        raise ReproError(f"pipeline depth must be >= 1, got {depth}")
    if not timings:
        return 0.0
    n = len(timings)
    durations = [t.stages() for t in timings]
    n_stages = len(durations[0])
    # start[s][i] / completion[s][i], filled item-major so every
    # dependency (previous item, previous stage, queue slot) is ready.
    start = [[0.0] * n for _ in range(n_stages)]
    completion = [[0.0] * n for _ in range(n_stages)]
    for i in range(n):
        for s in range(n_stages):
            ready = 0.0
            if i > 0:
                ready = completion[s][i - 1]
            if s > 0:
                ready = max(ready, completion[s - 1][i])
            if s + 1 < n_stages and i - depth >= 0:
                ready = max(ready, start[s + 1][i - depth])
            start[s][i] = ready
            completion[s][i] = ready + durations[i][s]
    return completion[n_stages - 1][n - 1]


def modeled_speedup(timings: list[StageTiming], depth: int) -> float:
    """Sequential time over pipelined makespan (1.0 when empty)."""
    makespan = pipeline_makespan(timings, depth)
    if makespan <= 0.0:
        return 1.0
    return sequential_time(timings) / makespan


def fleet_makespan(
    timings: list[StageTiming], assignments: list[int]
) -> float:
    """Makespan of a split-parallel iteration across device streams.

    Host preparation (block generation + feature staging) stays serial
    in schedule order — the paper's finding — while each micro-batch's
    compute lands on its assigned device's stream::

        prep_done[i]   = prep_cursor + block_gen + staging
        start[i]       = max(prep_done[i], device_free[assignments[i]])
        device_free[d] = start[i] + compute

    The makespan is the slowest device stream; callers add the gradient
    all-reduce barrier separately (it is a property of the fleet clock,
    not of the schedule).
    """
    if len(timings) != len(assignments):
        raise ReproError(
            f"need one device assignment per timing: got "
            f"{len(assignments)} for {len(timings)} timings"
        )
    prep_cursor = 0.0
    device_free: dict[int, float] = {}
    for timing, device in zip(timings, assignments):
        prep_cursor += timing.block_gen_s + timing.staging_s
        start = max(prep_cursor, device_free.get(device, 0.0))
        device_free[device] = start + timing.compute_s
    return max(device_free.values(), default=0.0)
