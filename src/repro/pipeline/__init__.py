"""``repro.pipeline`` — pipelined micro-batch execution (beyond the paper).

Algorithm 2's inner loop is a clean producer/consumer chain: block
generation and host-side feature staging are independent of device
compute, and consecutive bucket groups share input-node cones (the
redundancy Eq. 1–2 quantify).  This package exploits both:

* :mod:`engine` — a staged execution engine running *block generation →
  feature staging → compute* over the K scheduled groups behind
  depth-limited prefetch queues, with a deterministic synchronous mode;
* :mod:`reuse` — a cross-group feature-reuse layer that pins
  redundantly-requested feature rows in the device cache between
  consecutive groups, guided by the plan's input-node overlap;
* :mod:`model` — the analytic overlap model turning measured per-stage
  durations into sequential-vs-pipelined epoch times.

Gradient accumulation semantics are preserved bit-for-bit: compute
consumes micro-batches in schedule order on the caller thread, so the
pipelined trainer matches the sequential trainer (and full-batch
training) exactly.  See ``docs/pipeline.md``.
"""

from repro.pipeline.engine import (
    PipelineConfig,
    PipelineEngine,
    PipelineReport,
    STAGE_SECONDS_BUCKETS,
)
from repro.pipeline.model import (
    StageTiming,
    modeled_speedup,
    pipeline_makespan,
    sequential_time,
)
from repro.pipeline.reuse import FeatureReuseManager, ReusePlan

__all__ = [
    "PipelineConfig",
    "PipelineEngine",
    "PipelineReport",
    "STAGE_SECONDS_BUCKETS",
    "StageTiming",
    "pipeline_makespan",
    "sequential_time",
    "modeled_speedup",
    "FeatureReuseManager",
    "ReusePlan",
]
