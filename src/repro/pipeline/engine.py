"""Staged micro-batch execution: block gen → feature staging → compute.

Algorithm 2 as written runs its bucket groups strictly sequentially,
so block generation and the host-side feature gather sit on the
critical path even though they are independent of device compute.
:class:`PipelineEngine` runs the K scheduled groups through a bounded
producer/consumer pipeline instead:

* **stage 0 — block generation** (worker thread): materializes each
  group's micro-batch with the fast generator;
* **stage 1 — feature staging** (worker thread): gathers the
  micro-batch's input-feature rows from host memory;
* **stage 2 — compute** (caller thread): forward/backward with
  gradient accumulation, device transfer + kernel simulation, exactly
  as :meth:`~repro.core.trainer.MicroBatchTrainer.train_iteration`
  performs them.

Queues are depth-limited (``--pipeline-depth``), bounding how far
preparation may run ahead of compute.  The compute stage consumes
micro-batches **in schedule order** regardless of prefetch completion
order (a reorder buffer keyed by group index), and every gradient
operation happens on the caller thread in that order — so accumulation
is bit-for-bit identical to the sequential trainer and convergence
stays mathematically identical to full-batch training.

``mode="sync"`` (or ``depth <= 1``) runs the same staged code path
without threads — fully deterministic, used by the differential tests —
while still measuring per-stage durations for the analytic overlap
model in :mod:`repro.pipeline.model`.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.microbatch import MicroBatch, materialize_micro_batch
from repro.core.scheduler import SchedulePlan
from repro.core.trainer import MicroBatchTrainer, TrainResult
from repro.datasets.catalog import Dataset
from repro.device.profiler import Profiler
from repro.errors import ConvergenceError, ReproError
from repro.graph.sampling import SampledBatch
from repro.obs.metrics import SECONDS_BUCKETS, get_metrics
from repro.obs.trace import get_tracer
from repro.pipeline.model import (
    StageTiming,
    pipeline_makespan,
    sequential_time,
)

#: Histogram edges for queue-wait / staging durations (seconds);
#: shared with the store's gather-latency histogram so the two are
#: directly comparable in one metrics snapshot.
STAGE_SECONDS_BUCKETS = SECONDS_BUCKETS

_DONE = object()


@dataclass
class PipelineConfig:
    """Knobs of the staged engine.

    Attributes:
        depth: prefetch-queue depth per stage boundary; ``1`` (or
            ``mode="sync"``) disables the worker threads.
        mode: ``"auto"`` picks threads when ``depth > 1``; ``"sync"``
            forces the deterministic in-line schedule; ``"threaded"``
            forces workers even at depth 1.
    """

    depth: int = 2
    mode: str = "auto"

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ReproError(
                f"pipeline depth must be >= 1, got {self.depth}"
            )
        if self.mode not in ("auto", "sync", "threaded"):
            raise ReproError(
                f"pipeline mode must be auto|sync|threaded, got {self.mode!r}"
            )

    @property
    def threaded(self) -> bool:
        if self.mode == "sync":
            return False
        if self.mode == "threaded":
            return True
        return self.depth > 1


@dataclass
class PipelineReport:
    """Per-iteration pipeline telemetry.

    Attributes:
        timings: per-micro-batch stage durations, schedule order.
        queue_wait_s: total seconds staged items sat ready in the
            prefetch queue before compute consumed them (threaded mode).
        makespan_s: modeled overlapped time of the measured stages at
            the configured depth.
        sequential_s: modeled strictly-serial time of the same stages.
    """

    depth: int
    mode: str
    timings: list[StageTiming] = field(default_factory=list)
    queue_wait_s: float = 0.0

    @property
    def makespan_s(self) -> float:
        return pipeline_makespan(self.timings, self.depth)

    @property
    def sequential_s(self) -> float:
        return sequential_time(self.timings)

    @property
    def modeled_speedup(self) -> float:
        makespan = self.makespan_s
        return self.sequential_s / makespan if makespan > 0 else 1.0


class PipelineEngine:
    """Drives one training iteration through the staged pipeline.

    Args:
        trainer: the micro-batch trainer whose math is replayed; its
            ``begin_iteration`` / ``train_micro_batch`` /
            ``finish_iteration`` decomposition guarantees op-for-op
            identical accumulation.
        config: depth/mode knobs.
    """

    def __init__(
        self, trainer: MicroBatchTrainer, config: PipelineConfig | None = None
    ) -> None:
        # The staging workers never touch the trainer or config: all
        # cross-thread traffic flows through the bounded queues in
        # _staged_threaded, so the engine itself needs no lock.
        self.trainer = trainer  # guarded-by: consumer-thread (compute stage only)
        self.config = config or PipelineConfig()  # guarded-by: construction-only (read-only knobs)

    # ------------------------------------------------------------------
    def run(
        self,
        dataset: Dataset,
        batch: SampledBatch,
        plan: SchedulePlan,
        cutoffs: list[int],
        *,
        profiler: Profiler | None = None,
    ) -> tuple[TrainResult, list[MicroBatch], PipelineReport]:
        """One full iteration over the plan's groups, pipelined.

        Returns the trainer's :class:`TrainResult`, the micro-batches in
        schedule order, and the stage-timing report.
        """
        profiler = profiler or Profiler()
        groups = plan.groups
        total_outputs = sum(g.n_output for g in groups)
        if total_outputs == 0:
            raise ConvergenceError("no output nodes to train on")

        report = PipelineReport(
            depth=self.config.depth,
            mode="threaded" if self.config.threaded else "sync",
        )
        tracer = get_tracer()
        metrics = get_metrics()
        device = self.trainer.device

        self.trainer.begin_iteration()
        loss_sum = 0.0
        peaks: list[int] = []
        micro_batches: list[MicroBatch] = []

        if self.config.threaded:
            staged_items = self._staged_threaded(dataset, batch, groups)
        else:
            staged_items = self._staged_sync(dataset, batch, groups)

        for index, mb, features, gen_s, stage_s, queue_wait in staged_items:
            with tracer.span(
                "pipeline.compute",
                {"index": index, "queue_wait_s": queue_wait},
            ):
                sim_before = device.sim_time_s if device is not None else 0.0
                compute_start = time.perf_counter()
                loss_value, peak = self.trainer.train_micro_batch(
                    dataset,
                    batch.node_map,
                    mb,
                    cutoffs,
                    total_outputs,
                    profiler,
                    index=index,
                    staged_features=features,
                )
                compute_s = time.perf_counter() - compute_start
                if device is not None:
                    compute_s += device.sim_time_s - sim_before
            loss_sum += loss_value
            if peak is not None:
                peaks.append(peak)
            micro_batches.append(mb)
            report.timings.append(
                StageTiming(
                    block_gen_s=gen_s,
                    staging_s=stage_s,
                    compute_s=compute_s,
                )
            )
            report.queue_wait_s += queue_wait
            metrics.histogram(
                "buffalo.pipeline.queue_wait_s",
                STAGE_SECONDS_BUCKETS,
                help="seconds staged micro-batches waited for compute",
            ).observe(queue_wait)
            metrics.histogram(
                "buffalo.pipeline.staging_s",
                STAGE_SECONDS_BUCKETS,
                help="host feature-gather seconds per micro-batch",
            ).observe(stage_s)

        result = self.trainer.finish_iteration(
            loss_sum, peaks, len(micro_batches), profiler
        )
        metrics.counter(
            "buffalo.pipeline.iterations",
            help="iterations executed by the staged engine",
        ).inc()
        metrics.gauge(
            "buffalo.pipeline.depth", help="configured prefetch depth"
        ).set(self.config.depth)
        metrics.gauge(
            "buffalo.pipeline.modeled_speedup",
            help="sequential / pipelined modeled time of the last iteration",
        ).set(report.modeled_speedup)
        return result, micro_batches, report

    # ------------------------------------------------------------------
    def _staged_sync(self, dataset, batch, groups):
        """Deterministic in-line staging: same stages, no threads."""
        tracer = get_tracer()
        for index, group in enumerate(groups):
            with tracer.span("pipeline.block_gen", {"index": index}):
                gen_start = time.perf_counter()
                mb = materialize_micro_batch(batch, group)
                gen_s = time.perf_counter() - gen_start
            with tracer.span("pipeline.stage_features", {"index": index}):
                stage_start = time.perf_counter()
                features = dataset.features[
                    batch.node_map[mb.blocks[0].src_nodes]
                ]
                stage_s = time.perf_counter() - stage_start
            yield index, mb, features, gen_s, stage_s, 0.0

    def _staged_threaded(self, dataset, batch, groups):
        """Two worker threads feed a reorder buffer the consumer drains.

        Workers never touch the model, optimizer, or simulated device —
        those stay on the caller thread — so the only cross-thread data
        are immutable micro-batches and freshly gathered feature arrays.
        """
        depth = self.config.depth
        blocks_q: queue.Queue = queue.Queue(maxsize=depth)
        staged_q: queue.Queue = queue.Queue(maxsize=depth)
        stop = threading.Event()
        tracer = get_tracer()

        def _put(q: queue.Queue, item) -> bool:
            while not stop.is_set():
                try:
                    q.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def _block_gen_worker() -> None:
            try:
                for index, group in enumerate(groups):
                    if stop.is_set():
                        return
                    with tracer.span(
                        "pipeline.block_gen", {"index": index}
                    ):
                        gen_start = time.perf_counter()
                        mb = materialize_micro_batch(batch, group)
                        gen_s = time.perf_counter() - gen_start
                    if not _put(blocks_q, (index, mb, gen_s)):
                        return
                _put(blocks_q, _DONE)
            except BaseException as exc:  # propagated to the consumer
                _put(blocks_q, ("error", exc))

        def _staging_worker() -> None:
            try:
                while not stop.is_set():
                    try:
                        item = blocks_q.get(timeout=0.05)
                    except queue.Empty:
                        continue
                    if item is _DONE:
                        _put(staged_q, _DONE)
                        return
                    if isinstance(item, tuple) and item[0] == "error":
                        _put(staged_q, item)
                        return
                    index, mb, gen_s = item
                    with tracer.span(
                        "pipeline.stage_features", {"index": index}
                    ):
                        stage_start = time.perf_counter()
                        features = dataset.features[
                            batch.node_map[mb.blocks[0].src_nodes]
                        ]
                        stage_s = time.perf_counter() - stage_start
                    ready = (
                        index, mb, features, gen_s, stage_s,
                        time.perf_counter(),
                    )
                    if not _put(staged_q, ready):
                        return
            except BaseException as exc:
                _put(staged_q, ("error", exc))

        workers = [
            threading.Thread(
                target=_block_gen_worker, name="buffalo-blockgen",
                daemon=True,
            ),
            threading.Thread(
                target=_staging_worker, name="buffalo-staging",
                daemon=True,
            ),
        ]
        for worker in workers:
            worker.start()

        # Reorder buffer: compute consumes strictly in schedule order
        # even if a future staging implementation completes out of
        # order.
        pending: dict[int, tuple] = {}
        expected = 0
        done = False
        try:
            while expected < len(groups):
                if expected in pending:
                    index, mb, features, gen_s, stage_s, ready_at = (
                        pending.pop(expected)
                    )
                    queue_wait = max(
                        time.perf_counter() - ready_at, 0.0
                    )
                    yield (
                        index, mb, features, gen_s, stage_s, queue_wait
                    )
                    expected += 1
                    continue
                if done:
                    raise ReproError(
                        "pipeline ended before micro-batch "
                        f"{expected} was staged"
                    )
                item = staged_q.get()
                if item is _DONE:
                    done = True
                    continue
                if isinstance(item, tuple) and item[0] == "error":
                    raise item[1]
                pending[item[0]] = item
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=5.0)
