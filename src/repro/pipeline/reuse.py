"""Cross-group feature reuse driven by the grouping plan.

Buffalo's memory model (Eq. 1–2) quantifies how much of a bucket
group's input cone is shared with the rest of the batch; the training
loop as written still re-gathers those shared rows from the host for
every group.  This layer consults the plan's per-group input-node sets
(:meth:`repro.core.scheduler.SchedulePlan.input_node_sets`) *before*
the first micro-batch runs, pins the rows that later groups will
request again in the device :class:`~repro.device.feature_cache
.FeatureCache`, and releases each pin right after its last planned
use — so redundantly-requested features ride out the iteration on the
device instead of crossing PCIe once per group.

Only the modeled transfer time changes: the host-side numpy gather (and
therefore every float the model consumes) is identical with and without
reuse, which the parity tests assert exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.feature_cache import FeatureCache
from repro.obs.metrics import get_metrics


@dataclass
class ReusePlan:
    """Pin/unpin schedule for one iteration's bucket groups.

    Attributes:
        pin_before: per group, node ids to pin before that group's
            features load (nodes first requested here and requested
            again by a later group).
        unpin_after: per group, node ids whose last planned use is that
            group (their pins are released right after its load).
        shared_nodes: distinct nodes requested by two or more groups.
        planned_pins: distinct nodes actually scheduled for pinning
            (``<= shared_nodes`` once the pin budget caps the plan).
    """

    pin_before: list[np.ndarray] = field(default_factory=list)
    unpin_after: list[np.ndarray] = field(default_factory=list)
    shared_nodes: int = 0
    planned_pins: int = 0

    @classmethod
    def from_input_sets(
        cls,
        input_sets: list[np.ndarray],
        max_pinned_rows: int | None = None,
    ) -> "ReusePlan":
        """Build the schedule from per-group input-node id sets.

        A node is worth pinning when it appears in more than one group.
        When the candidate set exceeds ``max_pinned_rows``, nodes
        requested by the most groups win (ties broken by node id), so
        the budget goes to the rows whose re-transfer would cost most.
        """
        k = len(input_sets)
        empty = [
            np.empty(0, dtype=np.int64) for _ in range(k)
        ]
        if k < 2:
            return cls(pin_before=list(empty), unpin_after=list(empty))

        nodes = np.concatenate(
            [np.unique(np.asarray(s).ravel()) for s in input_sets]
        )
        group_of = np.concatenate(
            [
                np.full(
                    np.unique(np.asarray(s).ravel()).size, g, dtype=np.int64
                )
                for g, s in enumerate(input_sets)
            ]
        )
        order = np.lexsort((group_of, nodes))
        nodes = nodes[order]
        group_of = group_of[order]
        # Segment boundaries per distinct node.
        new_node = np.ones(nodes.size, dtype=bool)
        new_node[1:] = nodes[1:] != nodes[:-1]
        starts = np.flatnonzero(new_node)
        ends = np.append(starts[1:], nodes.size)
        distinct = nodes[starts]
        first_use = group_of[starts]
        last_use = group_of[ends - 1]
        uses = ends - starts

        reused = last_use > first_use
        shared_nodes = int(np.count_nonzero(reused))
        sel = np.flatnonzero(reused)
        if max_pinned_rows is not None and sel.size > max_pinned_rows:
            # Most-requested nodes first; node id breaks ties so the
            # truncation is deterministic.
            rank = np.lexsort((distinct[sel], -uses[sel]))
            sel = np.sort(sel[rank[:max_pinned_rows]])

        pin_before = list(empty)
        unpin_after = list(empty)
        for g in range(k):
            pin_before[g] = distinct[sel[first_use[sel] == g]]
            unpin_after[g] = distinct[sel[last_use[sel] == g]]
        return cls(
            pin_before=pin_before,
            unpin_after=unpin_after,
            shared_nodes=shared_nodes,
            planned_pins=int(sel.size),
        )


class FeatureReuseManager:
    """Applies a :class:`ReusePlan` to a device feature cache.

    The manager is installed on a
    :class:`~repro.core.trainer.MicroBatchTrainer` (its ``reuse``
    attribute); the trainer then routes each micro-batch's simulated
    feature transfer through :meth:`stage`, which pins ahead of the
    load and releases pins after each group's last planned use.

    The cache itself persists across iterations — global node ids stay
    valid from batch to batch, so hot rows keep paying off — while the
    pin schedule is rebuilt per iteration from the fresh plan.
    """

    def __init__(self, cache: FeatureCache) -> None:
        self.cache = cache
        self._plan: ReusePlan | None = None
        self._cursor = 0

    # ------------------------------------------------------------------
    def begin_iteration(self, input_sets_global: list[np.ndarray]) -> None:
        """Install the pin schedule for one iteration.

        Args:
            input_sets_global: per-group *global* (dataset) node ids, in
                schedule order — the plan's batch-local sets mapped
                through the batch's ``node_map``.
        """
        self._plan = ReusePlan.from_input_sets(
            input_sets_global, self.cache.max_pinned_rows
        )
        self._cursor = 0
        get_metrics().gauge(
            "buffalo.feature_cache.planned_pins",
            help="rows scheduled for cross-group pinning this iteration",
        ).set(self._plan.planned_pins)

    def stage(self, nodes_global: np.ndarray) -> float:
        """Load one group's features through the cache; returns sim s.

        Called by the trainer in schedule order; advances the pin
        cursor.  Works without :meth:`begin_iteration` too (plain
        cached loads, no pinning).
        """
        plan = self._plan
        index = self._cursor
        if plan is not None and index < len(plan.pin_before):
            self.cache.pin(plan.pin_before[index])
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        seconds = self.cache.load(nodes_global)
        if plan is not None and index < len(plan.unpin_after):
            self.cache.unpin(plan.unpin_after[index])
        self._cursor += 1

        metrics = get_metrics()
        metrics.counter(
            "buffalo.feature_cache.hits",
            help="feature rows served from the device cache",
        ).inc(self.cache.hits - hits_before)
        metrics.counter(
            "buffalo.feature_cache.misses",
            help="feature rows transferred over PCIe",
        ).inc(self.cache.misses - misses_before)
        metrics.gauge(
            "buffalo.feature_cache.pinned_rows",
            help="rows currently pinned for cross-group reuse",
        ).set(self.cache.pinned_rows)
        return seconds

    def end_iteration(self) -> None:
        """Release any leftover pins and publish the cumulative hit rate."""
        self.cache.clear_pins()
        self._plan = None
        self._cursor = 0
        get_metrics().gauge(
            "buffalo.feature_cache.hit_rate",
            help="cumulative device feature-cache hit rate",
        ).set(self.cache.hit_rate)

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate
