"""Simulated GPU substrate.

The paper's experiments run on an NVIDIA RTX 6000 (24 GB) and an A100
(80 GB).  This package substitutes a *byte-accurate allocation ledger*
with a hard capacity (:class:`SimulatedGPU`) plus an analytic kernel /
transfer cost model calibrated to those parts (:mod:`costmodel`).

Two accounting paths feed the same ledger:

* **concrete** — every numpy buffer a :class:`~repro.tensor.Tensor`
  creates on the device is registered via :meth:`SimulatedGPU.track`;
  buffer lifetime is Python object lifetime, which mirrors a framework
  keeping activations alive until ``backward()`` releases the graph.
* **symbolic** — :meth:`SimulatedGPU.alloc` / :meth:`SimulatedGPU.free`
  record allocations without creating arrays, used by the footprint
  planner to sweep configurations far larger than CPU memory allows.

Both raise :class:`~repro.errors.DeviceOutOfMemoryError` when the budget
is exceeded, reproducing CUDA OOM semantics.
"""

from repro.device.memory import MemoryTracker
from repro.device.device import MultiGPU, SimulatedGPU
from repro.device.costmodel import (
    A100_80GB,
    DeviceSpec,
    GPUSpec,
    NVLINK_A100,
    PCIE_RTX6000,
    RTX6000_24GB,
    kernel_time,
    link_time,
    transfer_time,
)
from repro.device.feature_cache import FeatureCache
from repro.device.fleet import DeviceFleet
from repro.device.profiler import Profiler

__all__ = [
    "FeatureCache",
    "MemoryTracker",
    "SimulatedGPU",
    "MultiGPU",
    "DeviceFleet",
    "DeviceSpec",
    "GPUSpec",
    "RTX6000_24GB",
    "A100_80GB",
    "PCIE_RTX6000",
    "NVLINK_A100",
    "kernel_time",
    "link_time",
    "transfer_time",
    "Profiler",
]
