"""A fleet of simulated GPUs joined by a modeled interconnect.

:class:`DeviceFleet` generalizes the data-parallel ``MultiGPU`` pair of
clocks (per-device compute + shared all-reduce) into the substrate
split-parallel training needs:

* **per-device memory ledgers** — every member is a full
  :class:`~repro.device.device.SimulatedGPU` with its own capacity,
  allocation ledger, and kernel clock;
* **collectives** — :meth:`allreduce` prices a ring all-reduce of the
  gradient bytes (``2 (n-1)/n`` traffic per device, one link-latency
  charge per ring step) on the shared communication clock;
* **point-to-point exchange** — :meth:`exchange` prices a halo-feature
  gather *into one device* (bytes over the link plus one latency charge
  per peer contacted) and advances that device's own clock, so compute
  and halo traffic of different devices overlap while the all-reduce
  remains a barrier.

All devices share one :class:`~repro.device.costmodel.DeviceSpec`
(homogeneous fleet); per-device capacities may still differ via
``capacity_bytes``.
"""

from __future__ import annotations

from repro.device.costmodel import (
    DeviceSpec,
    GPUSpec,
    PCIE_RTX6000,
    link_time,
)
from repro.device.device import SimulatedGPU
from repro.errors import DeviceError

__all__ = ["DeviceFleet"]


class DeviceFleet:
    """``n_devices`` simulated GPUs plus one modeled interconnect.

    Args:
        n_devices: fleet size (>= 1).
        capacity_bytes: per-device memory budget — a single int applied
            to every device, a sequence of per-device ints, or ``None``
            for each device's spec capacity.
        spec: the fleet's :class:`DeviceSpec`; a bare :class:`GPUSpec`
            is accepted and wrapped (PCIe-peered, default latency).
        interconnect_bandwidth / interconnect_latency_s: overrides
            applied on top of ``spec`` (kept for ``MultiGPU`` compat).
    """

    def __init__(
        self,
        n_devices: int,
        capacity_bytes: int | list[int] | None = None,
        *,
        spec: DeviceSpec | GPUSpec = PCIE_RTX6000,
        interconnect_bandwidth: float | None = None,
        interconnect_latency_s: float | None = None,
    ) -> None:
        if n_devices < 1:
            raise DeviceError(f"need at least 1 device, got {n_devices}")
        if isinstance(spec, GPUSpec):
            spec = DeviceSpec(gpu=spec)
        if (
            interconnect_bandwidth is not None
            or interconnect_latency_s is not None
        ):
            spec = DeviceSpec(
                gpu=spec.gpu,
                interconnect_bandwidth=(
                    interconnect_bandwidth
                    if interconnect_bandwidth is not None
                    else spec.interconnect_bandwidth
                ),
                interconnect_latency_s=(
                    interconnect_latency_s
                    if interconnect_latency_s is not None
                    else spec.interconnect_latency_s
                ),
            )
        self.spec = spec
        if capacity_bytes is None or isinstance(capacity_bytes, int):
            capacities = [capacity_bytes] * n_devices
        else:
            capacities = list(capacity_bytes)
            if len(capacities) != n_devices:
                raise DeviceError(
                    f"capacity_bytes lists one budget per device: got "
                    f"{len(capacities)} for {n_devices} devices"
                )
        self.devices = [
            SimulatedGPU(
                capacity, spec=spec.gpu, name=f"{spec.gpu.name}:{i}"
            )
            for i, capacity in enumerate(capacities)
        ]
        self.allreduce_time_s = 0.0
        self.allreduce_bytes = 0
        self.exchange_time_s = 0.0
        self.halo_bytes = 0
        self.per_device_halo_bytes = [0] * n_devices

    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def interconnect_bandwidth(self) -> float:
        return self.spec.link_bandwidth

    @property
    def interconnect_latency_s(self) -> float:
        return self.spec.interconnect_latency_s

    # ------------------------------------------------------------------
    # Memory (fleet-wide views over the per-device ledgers)
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Fleet-resident bytes: sum of the per-device ledgers."""
        return sum(d.live_bytes for d in self.devices)

    @property
    def peak_bytes(self) -> int:
        """Worst single-device peak (the capacity-relevant number)."""
        return max(d.peak_bytes for d in self.devices)

    @property
    def per_device_peaks(self) -> list[int]:
        return [d.peak_bytes for d in self.devices]

    def reset_peak(self) -> None:
        for d in self.devices:
            d.reset_peak()

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def allreduce(self, nbytes: int) -> float:
        """Ring all-reduce of ``nbytes`` across the fleet.

        Each device sends/receives ``2 (n-1)/n * nbytes`` over
        ``2 (n-1)`` ring steps, each step paying one link latency.
        Advances the shared communication clock (a barrier: every
        device waits for the reduce); returns the duration.
        """
        n = self.n_devices
        if n == 1:
            return 0.0
        traffic = 2.0 * (n - 1) / n * nbytes
        duration = link_time(self.spec, traffic, n_messages=2 * (n - 1))
        self.allreduce_time_s += duration
        self.allreduce_bytes += int(nbytes)
        return duration

    def shard_read(self, device_index: int, nbytes: float) -> float:
        """Read locally-owned feature rows from the device's own shard.

        Split-parallel training keeps the feature matrix partitioned
        device-resident, so owned rows cost device-memory bandwidth
        instead of a host->device transfer.  Advances the reading
        device's clock; returns the duration.
        """
        if not 0 <= device_index < self.n_devices:
            raise DeviceError(
                f"device index {device_index} out of range "
                f"(fleet of {self.n_devices})"
            )
        if nbytes <= 0:
            return 0.0
        duration = nbytes / self.spec.gpu.mem_bandwidth
        self.devices[device_index].sim_time_s += duration
        return duration

    def exchange(
        self, device_index: int, nbytes: float, *, n_peers: int = 1
    ) -> float:
        """Halo gather: pull ``nbytes`` from peers into one device.

        Charged to the receiving device's own clock (pull model — the
        gather overlaps with other devices' compute), one link-latency
        charge per peer contacted.  Returns the duration (0 for an
        empty gather).
        """
        if not 0 <= device_index < self.n_devices:
            raise DeviceError(
                f"device index {device_index} out of range "
                f"(fleet of {self.n_devices})"
            )
        if nbytes <= 0:
            return 0.0
        duration = link_time(self.spec, nbytes, n_messages=max(n_peers, 1))
        self.devices[device_index].sim_time_s += duration
        self.exchange_time_s += duration
        self.halo_bytes += int(nbytes)
        self.per_device_halo_bytes[device_index] += int(nbytes)
        return duration

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def sim_time_s(self) -> float:
        """Fleet makespan: slowest device plus the all-reduce barrier.

        Per-device clocks already include each device's own halo
        gathers, so exchange time overlaps across devices while the
        all-reduce serializes.
        """
        return max(d.sim_time_s for d in self.devices) + (
            self.allreduce_time_s
        )

    def reset_clock(self) -> None:
        for d in self.devices:
            d.reset_clock()
        self.allreduce_time_s = 0.0
        self.allreduce_bytes = 0
        self.exchange_time_s = 0.0
        self.halo_bytes = 0
        self.per_device_halo_bytes = [0] * self.n_devices

    def __repr__(self) -> str:
        return (
            f"DeviceFleet(n={self.n_devices}, gpu={self.spec.gpu.name}, "
            f"link={self.interconnect_bandwidth / 1e9:.0f}GB/s"
            f"+{self.interconnect_latency_s * 1e6:.0f}us)"
        )
