"""Device-resident feature cache across micro-batches.

Micro-batches built from the same batch share input nodes (the
redundancy Buffalo's estimator models, §IV-D); reloading every shared
node's features over PCIe per micro-batch wastes transfer time.  This
cache keeps recently used feature rows on the device (LRU, bounded by a
byte budget carved out of the device's memory) and loads only the
missing rows — the tiered-memory direction the paper's related work
points at.

Rows can additionally be *pinned*: the cross-group reuse layer
(:mod:`repro.pipeline.reuse`) consults the grouping plan's input-node
overlap and pins rows that later bucket groups will request again, so
they survive LRU pressure from the intervening single-use rows.  Pinned
rows are exempt from eviction until unpinned; to keep the cache
bounded, at most half the row capacity may be pinned at once.

The cache is deliberately conservative about memory: its resident bytes
are tracked as a symbolic allocation on the device ledger, so a cache
that would crowd out activations shows up as OOM, exactly like an
over-eager real cache would.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.device.device import SimulatedGPU
from repro.errors import DeviceError


class FeatureCache:
    """LRU cache of per-node feature rows on a simulated device.

    Args:
        device: the GPU whose ledger and PCIe link are charged.
        feat_bytes: bytes of one node's feature row.
        capacity_bytes: cache budget; rows are evicted LRU when full.

    Usage: call :meth:`load` with the global node ids a micro-batch
    needs; it returns the transfer seconds spent (only misses are
    transferred) and updates hit statistics.
    """

    def __init__(
        self,
        device: SimulatedGPU,
        feat_bytes: int,
        capacity_bytes: int,
    ) -> None:
        if feat_bytes <= 0:
            raise DeviceError(f"feat_bytes must be positive, got {feat_bytes}")
        if capacity_bytes < feat_bytes:
            raise DeviceError(
                "cache capacity must hold at least one feature row"
            )
        self.device = device
        self.feat_bytes = int(feat_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self.max_rows = self.capacity_bytes // self.feat_bytes
        self._resident: OrderedDict[int, None] = OrderedDict()
        self._pinned: set[int] = set()
        self._handle = device.alloc(0)  # grows with residency
        self._resident_bytes = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _resize(self, n_rows: int) -> None:
        """Re-book the cache's symbolic allocation at ``n_rows`` rows."""
        self.device.free(self._handle)
        self._resident_bytes = n_rows * self.feat_bytes
        self._handle = self.device.alloc(self._resident_bytes)

    def _evict_to_capacity(self) -> None:
        """Evict unpinned rows, LRU first, until within ``max_rows``.

        Pinned rows are skipped; when every resident row is pinned the
        loop stops (the pin budget guarantees this cannot exceed half
        the capacity, so residency stays bounded).
        """
        while len(self._resident) > self.max_rows:
            victim = next(
                (n for n in self._resident if n not in self._pinned), None
            )
            if victim is None:
                break
            del self._resident[victim]

    def load(self, nodes: np.ndarray) -> float:
        """Ensure ``nodes``' features are on device; returns transfer s."""
        nodes = np.asarray(nodes).ravel()
        missing = 0
        for node in nodes.tolist():
            if node in self._resident:
                self._resident.move_to_end(node)
                self.hits += 1
                continue
            self.misses += 1
            missing += 1
            self._resident[node] = None
            self._evict_to_capacity()
        self._resize(len(self._resident))
        if missing == 0:
            return 0.0
        return self.device.load(missing * self.feat_bytes)

    # ------------------------------------------------------------------
    # Pinning (cross-group reuse)
    # ------------------------------------------------------------------
    @property
    def max_pinned_rows(self) -> int:
        """Pin budget: at most half the capacity may be pinned."""
        return max(self.max_rows // 2, 1)

    def pin(self, nodes: np.ndarray) -> int:
        """Mark ``nodes`` exempt from eviction; returns rows pinned.

        Nodes need not be resident yet — pinning applies as soon as a
        later :meth:`load` brings them in.  Requests beyond the pin
        budget are ignored (first-come, first-pinned), keeping the
        cache's eviction loop live.
        """
        nodes = np.asarray(nodes).ravel()
        pinned = 0
        budget = self.max_pinned_rows
        for node in nodes.tolist():
            if node in self._pinned:
                continue
            if len(self._pinned) >= budget:
                break
            self._pinned.add(node)
            pinned += 1
        return pinned

    def unpin(self, nodes: np.ndarray) -> None:
        """Make ``nodes`` evictable again (no-op for unpinned nodes)."""
        nodes = np.asarray(nodes).ravel()
        self._pinned.difference_update(int(n) for n in nodes.tolist())
        self._evict_to_capacity()
        self._resize(len(self._resident))

    def clear_pins(self) -> None:
        """Drop every pin and re-apply the LRU bound."""
        self._pinned.clear()
        self._evict_to_capacity()
        self._resize(len(self._resident))

    @property
    def pinned_rows(self) -> int:
        return len(self._pinned)

    @property
    def pinned_resident_rows(self) -> int:
        """Pinned rows currently resident on the device."""
        return sum(1 for n in self._pinned if n in self._resident)

    # ------------------------------------------------------------------
    @property
    def resident_rows(self) -> int:
        return len(self._resident)

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all cached rows and release the device bytes."""
        self._resident.clear()
        self._pinned.clear()
        self._resize(0)
        self.hits = 0
        self.misses = 0

    def close(self) -> None:
        """Release the cache's device allocation entirely."""
        self.device.free(self._handle)
        self._handle = None
