"""Phase profiler: wall-clock for CPU phases, simulated time for GPU phases.

The paper's breakdown figures (Fig. 5, Fig. 11) report per-phase times:
partitioning / REG construction / connection check / block construction
(all CPU, measured here with real clocks) plus data loading and GPU
compute (simulated by the cost model).  The report labels each entry with
its clock kind so results stay honest about what was measured vs modeled.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field


@dataclass
class PhaseRecord:
    """Accumulated time for one named phase."""

    wall_s: float = 0.0
    sim_s: float = 0.0
    count: int = 0

    @property
    def total_s(self) -> float:
        return self.wall_s + self.sim_s


@dataclass
class Profiler:
    """Accumulates per-phase wall and simulated time."""

    phases: dict[str, PhaseRecord] = field(default_factory=dict)

    def _record(self, name: str) -> PhaseRecord:
        return self.phases.setdefault(name, PhaseRecord())

    @contextlib.contextmanager
    def phase(self, name: str):
        """Context manager measuring wall-clock time into ``name``."""
        record = self._record(name)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_s += time.perf_counter() - start
            record.count += 1

    def add_sim(self, name: str, seconds: float) -> None:
        """Add simulated (cost-model) seconds to ``name``."""
        record = self._record(name)
        record.sim_s += seconds
        record.count += 1

    def total_s(self) -> float:
        """End-to-end time across all phases."""
        return sum(r.total_s for r in self.phases.values())

    def breakdown(self) -> dict[str, float]:
        """Phase name -> total seconds (wall + simulated)."""
        return {name: r.total_s for name, r in self.phases.items()}

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's phases into this one."""
        for name, record in other.phases.items():
            mine = self._record(name)
            mine.wall_s += record.wall_s
            mine.sim_s += record.sim_s
            mine.count += record.count
