"""Phase profiler: wall-clock for CPU phases, simulated time for GPU phases.

The paper's breakdown figures (Fig. 5, Fig. 11) report per-phase times:
partitioning / REG construction / connection check / block construction
(all CPU, measured here with real clocks) plus data loading and GPU
compute (simulated by the cost model).  The report labels each entry with
its clock kind so results stay honest about what was measured vs modeled.

The profiler is wired into the :mod:`repro.obs` tracing backbone in both
directions:

* **producer** — :meth:`Profiler.phase` opens a ``kind="phase"`` span
  and :meth:`Profiler.add_sim` emits a ``sim`` point event on the
  process tracer, so every profiled phase lands in ``--trace`` output
  (a no-op when no sink is attached);
* **consumer** — :meth:`Profiler.consume` folds those same events back
  into per-phase records, which is how ``repro trace summarize``
  reconstructs a breakdown from a JSONL file.  The Fig. 5/11 benchmarks
  keep using the accumulate-in-process path unchanged.

Determinism: :meth:`breakdown` and :meth:`merge` keep phases in sorted
name order, so reports and trace summaries are byte-stable across runs.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.trace import get_tracer

#: Event name used for simulated-clock contributions in traces.
SIM_EVENT = "sim"


@dataclass
class PhaseRecord:
    """Accumulated time for one named phase."""

    wall_s: float = 0.0
    sim_s: float = 0.0
    count: int = 0

    @property
    def total_s(self) -> float:
        return self.wall_s + self.sim_s


@dataclass
class Profiler:
    """Accumulates per-phase wall and simulated time."""

    phases: dict[str, PhaseRecord] = field(default_factory=dict)  # guarded-by: GIL-atomic (dict.setdefault; sorting/merge run on the coordinating thread)

    def _record(self, name: str) -> PhaseRecord:
        return self.phases.setdefault(name, PhaseRecord())

    @contextlib.contextmanager
    def phase(self, name: str, attrs: dict | None = None):
        """Context manager measuring wall-clock time into ``name``.

        Yields the trace span (a shared no-op object when tracing is
        disabled), so callers may attach attributes::

            with profiler.phase("sampling") as span:
                ...
                span.set_attr("n_seeds", batch.n_seeds)
        """
        record = self._record(name)
        span = get_tracer().span(name, attrs, kind="phase")
        start = time.perf_counter()
        try:
            with span:
                yield span
        finally:
            record.wall_s += time.perf_counter() - start
            record.count += 1

    def add_sim(self, name: str, seconds: float) -> None:
        """Add simulated (cost-model) seconds to ``name``."""
        record = self._record(name)
        record.sim_s += seconds
        record.count += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(SIM_EVENT, {"phase": name, "sim_s": seconds})

    # ------------------------------------------------------------------
    # Span-event consumption (repro.obs)
    # ------------------------------------------------------------------
    def consume(self, event: dict) -> None:
        """Fold one trace event into the phase table.

        Recognizes ``kind="phase"`` span events (wall time) and ``sim``
        point events (simulated time); everything else is ignored.
        """
        if not isinstance(event, dict):
            return
        if event.get("type") == "span" and event.get("kind") == "phase":
            record = self._record(event["name"])
            record.wall_s += float(event.get("duration_s", 0.0))
            record.count += 1
        elif event.get("type") == "event" and event.get("name") == SIM_EVENT:
            attrs = event.get("attrs") or {}
            phase = attrs.get("phase")
            if phase:
                record = self._record(str(phase))
                record.sim_s += float(attrs.get("sim_s", 0.0))
                record.count += 1

    @classmethod
    def from_events(cls, events: Iterable[dict]) -> "Profiler":
        """Rebuild a profiler from a trace-event stream."""
        profiler = cls()
        for event in events:
            profiler.consume(event)
        profiler._sort_phases()
        return profiler

    # ------------------------------------------------------------------
    def total_s(self) -> float:
        """End-to-end time across all phases."""
        return sum(r.total_s for r in self.phases.values())

    def breakdown(self) -> dict[str, float]:
        """Phase name -> total seconds (wall + simulated), sorted by name."""
        return {
            name: self.phases[name].total_s
            for name in sorted(self.phases)
        }

    def _sort_phases(self) -> None:
        self.phases = {
            name: self.phases[name] for name in sorted(self.phases)
        }

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's phases into this one (sorted order)."""
        for name, record in other.phases.items():
            mine = self._record(name)
            mine.wall_s += record.wall_s
            mine.sim_s += record.sim_s
            mine.count += record.count
        self._sort_phases()
