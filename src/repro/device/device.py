"""The simulated GPU and a data-parallel multi-GPU wrapper."""

from __future__ import annotations

import numpy as np

from repro.device.costmodel import GPUSpec, RTX6000_24GB, kernel_time, transfer_time
from repro.device.memory import MemoryTracker
from repro.errors import DeviceError


class SimulatedGPU:
    """A GPU with a memory budget, an allocation ledger, and a clock.

    Args:
        capacity_bytes: memory budget; defaults to the spec's capacity.
            Experiments shrink this to model the paper's "memory budget"
            sweeps (Fig. 15).
        spec: hardware timing constants (defaults to the paper's RTX 6000).

    The simulated clock (:attr:`sim_time_s`) advances through
    :meth:`run_kernel` and :meth:`load` calls; CPU wall time is tracked by
    the caller's :class:`~repro.device.profiler.Profiler`.
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        *,
        spec: GPUSpec = RTX6000_24GB,
        name: str | None = None,
    ) -> None:
        self.spec = spec
        self.name = name or spec.name
        self.memory = MemoryTracker(
            spec.capacity_bytes if capacity_bytes is None else capacity_bytes
        )
        self.sim_time_s = 0.0
        self.kernel_count = 0
        self.bytes_loaded = 0

    # ------------------------------------------------------------------
    # Memory (delegation)
    # ------------------------------------------------------------------
    def track(self, array: np.ndarray) -> None:
        """Register a concrete tensor buffer with the ledger."""
        self.memory.track(array)

    def alloc(self, nbytes: int) -> int:
        """Symbolic allocation; see :class:`MemoryTracker`."""
        return self.memory.alloc(nbytes)

    def free(self, handle: int) -> None:
        self.memory.free(handle)

    @property
    def capacity(self) -> int | None:
        return self.memory.capacity

    @property
    def live_bytes(self) -> int:
        return self.memory.live_bytes

    @property
    def peak_bytes(self) -> int:
        return self.memory.peak_bytes

    def reset_peak(self) -> None:
        self.memory.reset_peak()

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def run_kernel(self, flops: float, bytes_moved: float) -> float:
        """Advance the clock by one kernel; returns its duration."""
        duration = kernel_time(self.spec, flops, bytes_moved)
        self.sim_time_s += duration
        self.kernel_count += 1
        return duration

    def load(self, nbytes: float) -> float:
        """Advance the clock by a host->device transfer."""
        duration = transfer_time(self.spec, nbytes)
        self.sim_time_s += duration
        self.bytes_loaded += int(nbytes)
        return duration

    def reset_clock(self) -> None:
        self.sim_time_s = 0.0
        self.kernel_count = 0
        self.bytes_loaded = 0

    def __repr__(self) -> str:
        cap = self.capacity
        cap_str = f"{cap / 2**30:.0f}GiB" if cap else "unlimited"
        return f"SimulatedGPU({self.name}, capacity={cap_str})"


def _fleet_cls():
    # Deferred: fleet.py imports SimulatedGPU from this module.
    from repro.device.fleet import DeviceFleet

    return DeviceFleet


class MultiGPU:
    """Data-parallel group of simulated GPUs connected by PCIe.

    Models the paper's §V-G setup: micro-batches are distributed across
    devices; after each round the gradient all-reduce costs one
    parameter-sized transfer per ring step over the inter-GPU link.

    A thin facade over :class:`~repro.device.fleet.DeviceFleet` kept
    for its historical constructor signature; the link latency that
    used to be hardcoded here (``20e-6``) now comes from the fleet's
    :class:`~repro.device.costmodel.DeviceSpec`.
    """

    def __new__(
        cls,
        n_devices: int,
        capacity_bytes: int | None = None,
        *,
        spec: GPUSpec = RTX6000_24GB,
        interconnect_bandwidth: float | None = None,
        interconnect_latency_s: float | None = None,
    ):
        fleet = _fleet_cls()(
            n_devices,
            capacity_bytes,
            spec=spec,
            interconnect_bandwidth=interconnect_bandwidth,
            interconnect_latency_s=interconnect_latency_s,
        )
        return fleet
