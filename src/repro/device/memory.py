"""Byte-accurate memory ledger with weakref-based buffer tracking."""

from __future__ import annotations

import weakref

import numpy as np

from repro.errors import DeviceError, DeviceOutOfMemoryError


def _owning_array(array: np.ndarray) -> np.ndarray:
    """Walk ``.base`` to the array that owns the buffer.

    Views (reshapes, slices) share their parent's buffer; tracking the
    owner once avoids double counting.
    """
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


class MemoryTracker:
    """Tracks live bytes against an optional capacity.

    Buffers are registered with :meth:`track` (weakref: bytes are released
    when the array is garbage collected) or with explicit
    :meth:`alloc` / :meth:`free` handles (symbolic execution).

    Attributes:
        capacity: budget in bytes, or ``None`` for unlimited.
        live_bytes: bytes currently allocated.
        peak_bytes: high-water mark since construction / last
            :meth:`reset_peak`.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise DeviceError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.live_bytes = 0
        self.peak_bytes = 0
        self.oom_count = 0
        self._tracked: dict[int, tuple[int, weakref.ref]] = {}
        self._handles: dict[int, int] = {}
        self._next_handle = 0

    # ------------------------------------------------------------------
    def _charge(self, nbytes: int) -> None:
        if (
            self.capacity is not None
            and self.live_bytes + nbytes > self.capacity
        ):
            self.oom_count += 1
            raise DeviceOutOfMemoryError(
                nbytes, self.live_bytes, self.capacity
            )
        self.live_bytes += nbytes
        if self.live_bytes > self.peak_bytes:
            self.peak_bytes = self.live_bytes

    # ------------------------------------------------------------------
    # Weakref path (concrete tensors)
    # ------------------------------------------------------------------
    def track(self, array: np.ndarray) -> None:
        """Register a numpy buffer; released automatically on GC."""
        owner = _owning_array(np.asarray(array))
        key = id(owner)
        if key in self._tracked:
            return
        nbytes = int(owner.nbytes)
        self._charge(nbytes)

        def _release(_ref, *, _key=key, _nbytes=nbytes) -> None:
            if self._tracked.pop(_key, None) is not None:
                self.live_bytes -= _nbytes

        self._tracked[key] = (nbytes, weakref.ref(owner, _release))

    # ------------------------------------------------------------------
    # Handle path (symbolic execution)
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        """Record an allocation of ``nbytes``; returns a handle."""
        if nbytes < 0:
            raise DeviceError(f"cannot allocate {nbytes} bytes")
        self._charge(int(nbytes))
        handle = self._next_handle
        self._next_handle += 1
        self._handles[handle] = int(nbytes)
        return handle

    def free(self, handle: int) -> None:
        """Release an allocation made with :meth:`alloc`."""
        nbytes = self._handles.pop(handle, None)
        if nbytes is None:
            raise DeviceError(f"free of unknown or already-freed handle {handle}")
        self.live_bytes -= nbytes

    # ------------------------------------------------------------------
    def reset_peak(self) -> None:
        """Restart the high-water mark at the current live size."""
        self.peak_bytes = self.live_bytes

    def would_fit(self, nbytes: int) -> bool:
        """True when ``nbytes`` more would stay within capacity."""
        if self.capacity is None:
            return True
        return self.live_bytes + nbytes <= self.capacity
