"""Analytic GPU timing model.

GPU kernels are either compute-bound (FLOPs / peak throughput) or
memory-bound (bytes moved / memory bandwidth); the roofline maximum of the
two plus a fixed launch overhead is the standard first-order kernel model.
Host-to-device traffic goes over PCIe at its own bandwidth.

The constants below are the published specs of the paper's hardware
de-rated to realistic attained fractions (GNN message-passing kernels are
far from peak).  Every experiment's "GPU compute time" and "data loading
time" come from these functions; CPU-side phases (scheduling,
partitioning, block generation) are measured with real wall clocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GiB


@dataclass(frozen=True)
class GPUSpec:
    """Hardware constants for one GPU model.

    Attributes:
        name: human-readable model name.
        flops: attainable FP32 throughput, FLOP/s.
        mem_bandwidth: attainable device-memory bandwidth, B/s.
        pcie_bandwidth: attainable host->device bandwidth, B/s.
        kernel_launch_s: fixed per-kernel launch overhead, seconds.
        capacity_bytes: device memory size, bytes.
    """

    name: str
    flops: float
    mem_bandwidth: float
    pcie_bandwidth: float
    kernel_launch_s: float
    capacity_bytes: int


#: Quadro RTX 6000: 16.3 TFLOP/s peak FP32, 672 GB/s GDDR6, PCIe 3 x16.
#: De-rated to ~40% attained compute and ~70% attained bandwidth.
RTX6000_24GB = GPUSpec(
    name="RTX6000",
    flops=6.5e12,
    mem_bandwidth=470e9,
    pcie_bandwidth=12e9,
    kernel_launch_s=5e-6,
    capacity_bytes=24 * GiB,
)

#: A100 80GB: 19.5 TFLOP/s peak FP32, 2039 GB/s HBM2e, PCIe 4 x16.
A100_80GB = GPUSpec(
    name="A100",
    flops=7.8e12,
    mem_bandwidth=1400e9,
    pcie_bandwidth=24e9,
    kernel_launch_s=5e-6,
    capacity_bytes=80 * GiB,
)


@dataclass(frozen=True)
class DeviceSpec:
    """One device of a fleet: a GPU plus its inter-device link.

    Historically the inter-GPU link was described by a bare bandwidth
    number and a latency constant hardcoded inside
    :meth:`~repro.device.device.MultiGPU.allreduce`; both now live here
    so collectives and halo exchanges price messages consistently.

    Attributes:
        gpu: the compute/memory/PCIe constants of the device itself.
        interconnect_bandwidth: attainable device-to-device bandwidth,
            B/s; ``None`` falls back to the GPU's PCIe bandwidth (the
            paper's §V-G setup, where GPUs peer over the PCIe switch).
        interconnect_latency_s: fixed per-message link latency, seconds
            (the constant formerly hardcoded as ``20e-6``).
    """

    gpu: GPUSpec = RTX6000_24GB
    interconnect_bandwidth: float | None = None
    interconnect_latency_s: float = 20e-6

    @property
    def link_bandwidth(self) -> float:
        """Effective device-to-device bandwidth, B/s."""
        if self.interconnect_bandwidth is not None:
            return self.interconnect_bandwidth
        return self.gpu.pcie_bandwidth


#: The paper's multi-GPU testbed: RTX 6000s peering over PCIe 3 x16.
PCIE_RTX6000 = DeviceSpec(gpu=RTX6000_24GB)

#: A100s over an NVLink-class link (~10x PCIe bandwidth, lower latency).
NVLINK_A100 = DeviceSpec(
    gpu=A100_80GB,
    interconnect_bandwidth=200e9,
    interconnect_latency_s=5e-6,
)


def kernel_time(spec: GPUSpec, flops: float, bytes_moved: float) -> float:
    """Roofline kernel duration: max(compute, memory) + launch overhead."""
    compute = flops / spec.flops
    memory = bytes_moved / spec.mem_bandwidth
    return max(compute, memory) + spec.kernel_launch_s


def transfer_time(spec: GPUSpec, nbytes: float) -> float:
    """Host-to-device copy duration over PCIe (plus a 10 µs setup)."""
    return nbytes / spec.pcie_bandwidth + 10e-6


def link_time(
    spec: DeviceSpec, nbytes: float, *, n_messages: int = 1
) -> float:
    """Device-to-device transfer duration over the interconnect.

    ``n_messages`` counts the fixed-latency round trips (one per peer
    for a halo gather, ``2 (n - 1)`` for a ring all-reduce).
    """
    return nbytes / spec.link_bandwidth + n_messages * (
        spec.interconnect_latency_s
    )
