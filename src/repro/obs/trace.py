"""Structured tracing: nested spans emitted as JSONL events.

The tracer is the single instrumentation backbone of the pipeline.
Every Buffalo phase (sampling, block generation, scheduling, micro-batch
materialization, training) opens a span; spans nest via an explicit
stack, carry free-form attributes, and are emitted to pluggable sinks as
one JSON object per line when they close.

Design constraints (ISSUE 1):

* **Near-zero overhead when disabled.**  With no sink attached,
  :meth:`Tracer.span` returns one shared no-op context manager — no
  allocation, no clock reads, no dict building.  The hot block-generation
  path pays a single attribute check.
* **Pluggable sinks.**  Anything with ``emit(event: dict)`` works:
  :class:`JsonlFileSink` for files, :class:`ListSink` for tests and
  in-process consumers (the refactored
  :class:`~repro.device.profiler.Profiler` consumes these events to
  build its per-phase breakdown).

Event wire format (see :mod:`repro.obs.schema` for the validator)::

    {"v": 1, "type": "span", "name": "sampling", "span_id": 3,
     "parent_id": 1, "ts": 1722950000.123, "duration_s": 0.004,
     "kind": "phase", "attrs": {"n_seeds": 256}}

Point events (``"type": "event"``) mark instants — e.g. simulated
GPU/loading time contributions that have no wall-clock extent.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Callable, Iterable, Protocol

from repro.errors import ReproError

EVENT_VERSION = 1

__all__ = [
    "EVENT_VERSION",
    "Span",
    "Sink",
    "JsonlFileSink",
    "ListSink",
    "Tracer",
    "TraceReadError",
    "get_tracer",
    "set_tracer",
    "read_trace_events",
]


class Sink(Protocol):
    """Destination for trace events."""

    def emit(self, event: dict) -> None:  # pragma: no cover - protocol
        ...


class ListSink:
    """Collects events in memory (tests, in-process consumers)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlFileSink:
    """Appends one compact JSON object per event to a file."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        self._fh.write(json.dumps(event, separators=(",", ":")))
        self._fh.write("\n")

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class CallbackSink:
    """Adapts a plain callable into a sink."""

    def __init__(self, fn: Callable[[dict], None]) -> None:
        self._fn = fn

    def emit(self, event: dict) -> None:
        self._fn(event)

    def close(self) -> None:
        pass


class Span:
    """One live span; also its own context manager.

    Created by :meth:`Tracer.span` — not directly.  Attributes set via
    :meth:`set_attr` (or the ``attrs`` argument) travel with the emitted
    event.
    """

    __slots__ = (
        "name",
        "kind",
        "attrs",
        "span_id",
        "parent_id",
        "ts",
        "duration_s",
        "_tracer",
        "_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        kind: str,
        attrs: dict[str, Any] | None,
        span_id: int,
        parent_id: int | None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.kind = kind
        self.attrs = dict(attrs) if attrs else {}
        self.span_id = span_id
        self.parent_id = parent_id
        self.ts = 0.0
        self.duration_s = 0.0
        self._start = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def set_attrs(self, attrs: dict[str, Any]) -> None:
        self.attrs.update(attrs)

    @property
    def recording(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        self.ts = self._tracer._now()
        self._start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def to_event(self) -> dict:
        return {
            "v": EVENT_VERSION,
            "type": "span",
            "name": self.name,
            "kind": self.kind,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "duration_s": self.duration_s,
            "thread": threading.current_thread().name,
            "attrs": self.attrs,
        }


class _NoopSpan:
    """Shared do-nothing span returned when no sink is attached."""

    __slots__ = ()

    name = ""
    kind = "noop"
    span_id = -1
    parent_id = None
    ts = 0.0
    duration_s = 0.0
    attrs: dict[str, Any] = {}
    recording = False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_attrs(self, attrs: dict[str, Any]) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces nested spans and fans events out to sinks.

    The span stack is thread-local so concurrent pipelines (e.g. the
    data-parallel trainer) nest correctly within their own thread.
    """

    def __init__(self) -> None:
        self._sinks: list[Sink] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        # One wall-clock sample per tracer; every ts is the anchor plus
        # a perf_counter delta, so timestamps within a trace are
        # monotonic and immune to wall-clock steps (NTP, DST).
        self._wall_anchor = time.time()
        self._perf_anchor = time.perf_counter()

    def _now(self) -> float:
        """Wall-clock-anchored monotonic timestamp (unix seconds)."""
        return self._wall_anchor + (time.perf_counter() - self._perf_anchor)

    # -- sink management ----------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    def add_sink(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def clear_sinks(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
        self._sinks = []

    # -- span stack ---------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit — drop up to the span
            del stack[stack.index(span):]
        self._emit(span.to_event())

    def current_span(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- event production ---------------------------------------------
    def span(
        self,
        name: str,
        attrs: dict[str, Any] | None = None,
        *,
        kind: str = "span",
    ) -> Span | _NoopSpan:
        """Open a span context manager (no-op fast path when disabled)."""
        if not self._sinks:
            return NOOP_SPAN
        parent = self.current_span()
        return Span(
            self,
            name,
            kind,
            attrs,
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
        )

    def event(
        self, name: str, attrs: dict[str, Any] | None = None
    ) -> None:
        """Emit a point-in-time event attached to the current span."""
        if not self._sinks:
            return
        parent = self.current_span()
        self._emit(
            {
                "v": EVENT_VERSION,
                "type": "event",
                "name": name,
                "kind": "point",
                "span_id": next(self._ids),
                "parent_id": None if parent is None else parent.span_id,
                "ts": self._now(),
                "duration_s": 0.0,
                "thread": threading.current_thread().name,
                "attrs": dict(attrs) if attrs else {},
            }
        )

    def _emit(self, event: dict) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self._sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until a sink is attached)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (tests); returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def read_jsonl(path: str) -> Iterable[dict]:
    """Yield events from a JSONL trace file (strict: raises on bad JSON)."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


class TraceReadError(ReproError):
    """A trace file is corrupt beyond a torn trailing line."""


def read_trace_events(
    path: str, *, allow_partial_tail: bool = True
) -> tuple[list[dict], int | None]:
    """Read a JSONL trace, tolerating a torn (mid-write) final line.

    A crashed or still-writing producer leaves at most one partial line,
    and only at the end of the file.  That last line is skipped and its
    line number returned; malformed JSON anywhere *else* is real
    corruption and raises :class:`TraceReadError` with ``path:lineno``.

    Returns:
        ``(events, skipped_lineno)`` — ``skipped_lineno`` is ``None``
        when every line parsed.
    """
    raw: list[tuple[int, str]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if stripped:
                raw.append((lineno, stripped))
    events: list[dict] = []
    skipped: int | None = None
    last_index = len(raw) - 1
    for index, (lineno, line) in enumerate(raw):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            # A torn tail needs at least one complete line before it —
            # a file that is *all* garbage is not a JSONL trace.
            if index == last_index and index > 0 and allow_partial_tail:
                skipped = lineno
                break
            raise TraceReadError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
    return events, skipped
