"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are cheap enough to stay always-on (a counter increment is a
couple of float ops), unlike spans which gate on an attached sink.  The
registry snapshot is deterministic — instruments and histogram buckets
serialize in sorted order — so metrics files are byte-stable across runs
with identical workloads.

Naming convention: dotted lowercase, ``buffalo.`` prefix for pipeline
metrics (e.g. ``buffalo.micro_batches_per_iter``,
``buffalo.groups_per_schedule``, ``buffalo.block_gen_nodes``,
``buffalo.peak_mem_bytes``, ``buffalo.estimator_rel_error``).
"""

from __future__ import annotations

import json
import math

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
    "get_metrics",
    "set_metrics",
    "ESTIMATOR_ERROR_BUCKETS",
    "SMALL_COUNT_BUCKETS",
    "BYTE_BUCKETS",
    "SECONDS_BUCKETS",
    "LATENCY_SECONDS_BUCKETS",
]

# Relative-error buckets for the Table III estimator-accuracy histogram:
# signed (predicted - actual) / actual, clamped into these edges.
ESTIMATOR_ERROR_BUCKETS = (
    -0.5, -0.25, -0.1, -0.05, -0.02,
    0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0,
)

# Micro-batch / group counts per iteration (K rarely exceeds 128).
SMALL_COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

# Byte sizes from 1 KiB to 64 GiB in power-of-4 steps.
BYTE_BUCKETS = tuple(float(4**i * 1024) for i in range(13))

# Wall-clock durations from 10 µs to 100 s (gather latency, staging,
# queue waits) in decade steps.
SECONDS_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0)

# Online-serving latencies: the training-phase SECONDS_BUCKETS above
# jump a full decade per edge, which collapses every sub-millisecond
# request into two buckets and makes serving p99s meaningless.  These
# run 20 µs -> 5 s on a ~2.5x grid, giving sub-millisecond resolution
# where serving SLOs live.  Shared by the ``buffalo.serve.*``
# histograms and the serve_load ledger quantiles so both report the
# same numbers.
LATENCY_SECONDS_BUCKETS = (
    2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def bucket_quantile(
    edges: tuple[float, ...],
    counts: list[int],
    q: float,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float | None:
    """Estimate quantile ``q`` from fixed-bucket counts.

    ``counts`` has ``len(edges) + 1`` entries (trailing overflow
    bucket); bucket ``i`` covers ``(edges[i-1], edges[i]]``.  The
    estimate interpolates linearly within the containing bucket; the
    open-ended first/overflow buckets — and interior edges — are
    clamped to the observed ``minimum``/``maximum`` when provided, so
    quantiles never fall outside the observed range.

    Returns ``None`` when no observations have been recorded.
    """
    if not 0.0 <= q <= 1.0:
        raise ReproError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return None
    target = q * total
    cumulative = 0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if cumulative + n >= target:
            # Bucket bounds: (lo, hi], open at the ends.
            lo = edges[i - 1] if i > 0 else (
                minimum if minimum is not None else edges[0]
            )
            hi = edges[i] if i < len(edges) else (
                maximum if maximum is not None else edges[-1]
            )
            if minimum is not None:
                lo = max(lo, minimum)
                hi = max(hi, minimum)
            if maximum is not None:
                lo = min(lo, maximum)
                hi = min(hi, maximum)
            fraction = (target - cumulative) / n
            return lo + (hi - lo) * fraction
        cumulative += n
    # q == 1.0 with floating-point slack: top of the last occupied bucket.
    if maximum is not None:
        return maximum
    return edges[-1]


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-set value (e.g. current peak memory)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with cumulative-free per-bucket counts.

    ``buckets`` are strictly increasing upper bounds; an implicit
    ``+inf`` bucket catches overflow.  An observation lands in the first
    bucket whose upper bound is ``>=`` the value.
    """

    __slots__ = ("name", "help", "buckets", "counts", "_sum", "_count",
                 "_min", "_max")

    def __init__(
        self, name: str, buckets: tuple[float, ...], help: str = ""
    ) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ReproError(f"histogram {name} needs at least one bucket")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ReproError(
                f"histogram {name} buckets must be strictly increasing: "
                f"{edges}"
            )
        self.name = name
        self.help = help
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first edge >= value
            mid = (lo + hi) // 2
            if self.buckets[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self._sum += value
        self._count += 1
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def quantile(self, q: float) -> float | None:
        """Streaming quantile estimate interpolated over the buckets."""
        return bucket_quantile(
            self.buckets,
            self.counts,
            q,
            minimum=None if self._count == 0 else self._min,
            maximum=None if self._count == 0 else self._max,
        )

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": None if self._count == 0 else self._min,
            "max": None if self._count == 0 else self._max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments with idempotent creation and JSON export."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ReproError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help), Counter
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = SMALL_COUNT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets, help), Histogram
        )

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """Deterministic name -> serialized-instrument mapping."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every instrument (keeps registrations)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def clear(self) -> None:
        """Drop every instrument registration."""
        self._instruments.clear()


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _METRICS
    previous = _METRICS
    _METRICS = registry
    return previous
