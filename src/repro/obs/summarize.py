"""Trace summarization: JSONL span events -> per-phase breakdown.

The summarizer feeds span events back through
:meth:`repro.device.profiler.Profiler.consume`, so the table printed by
``repro trace summarize`` is exactly the breakdown the live profiler
would have produced — one code path for both online (Fig. 5/11
benchmarks) and offline (trace file) analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.device.profiler import Profiler
from repro.obs.trace import read_trace_events

__all__ = ["TraceSummary", "summarize_events", "summarize_file",
           "render_summary"]


@dataclass
class TraceSummary:
    """Aggregated view of one trace file."""

    n_events: int = 0
    n_spans: int = 0
    profiler: Profiler = field(default_factory=Profiler)
    span_totals: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: Line number of a torn trailing line that was skipped, or None.
    skipped_tail_lineno: int | None = None

    @property
    def total_s(self) -> float:
        return self.profiler.total_s()


def summarize_events(events: Iterable[dict]) -> TraceSummary:
    """Fold an event stream into per-phase and per-span aggregates."""
    summary = TraceSummary()
    totals: dict[str, list[float]] = {}
    for event in events:
        summary.n_events += 1
        summary.profiler.consume(event)
        if event.get("type") != "span":
            continue
        summary.n_spans += 1
        if event.get("kind") == "phase":
            continue  # already in the profiler's phase table
        entry = totals.setdefault(event["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += float(event.get("duration_s", 0.0))
    summary.span_totals = {
        name: (int(count), total)
        for name, (count, total) in sorted(totals.items())
    }
    return summary


def summarize_file(path: str) -> TraceSummary:
    """Summarize a JSONL trace, tolerating a torn trailing line."""
    events, skipped = read_trace_events(path, allow_partial_tail=True)
    summary = summarize_events(events)
    summary.skipped_tail_lineno = skipped
    return summary


def render_summary(summary: TraceSummary, *, title: str = "") -> str:
    """Render the per-phase table (Fig. 11 phase names) plus span totals."""
    from repro.bench.reporting import format_table

    breakdown = summary.profiler.breakdown()
    total = sum(breakdown.values()) or 1.0
    rows = []
    for name in sorted(breakdown):
        record = summary.profiler.phases[name]
        rows.append(
            [
                name,
                record.count,
                f"{record.wall_s:.6f}",
                f"{record.sim_s:.6f}",
                f"{record.total_s:.6f}",
                f"{100.0 * record.total_s / total:.1f}%",
            ]
        )
    phase_table = format_table(
        ["phase", "count", "wall_s", "sim_s", "total_s", "share"],
        rows,
        title=title or (
            f"per-phase breakdown ({summary.n_events} events, "
            f"{summary.n_spans} spans)"
        ),
    )
    out = phase_table
    if summary.span_totals:
        span_rows = [
            [name, count, f"{total_s:.6f}"]
            for name, (count, total_s) in summary.span_totals.items()
        ]
        span_table = format_table(
            ["span", "count", "total_s"],
            span_rows,
            title="non-phase spans",
        )
        out = out + "\n\n" + span_table
    if summary.skipped_tail_lineno is not None:
        out = out + (
            f"\n\nnote: skipped torn trailing line "
            f"{summary.skipped_tail_lineno} (partial write)"
        )
    return out
