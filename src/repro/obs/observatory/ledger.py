"""Run ledger: durable per-run performance records with regression gates.

Every ``repro train`` / ``repro bench`` / ``repro experiment``
invocation can append one schema-versioned JSON record to
``benchmarks/ledger/<name>.jsonl``.  A record captures everything needed
to explain a perf delta after the fact:

* identity — record name, creation time, git revision, host info;
* reproducibility — the config dict and its SHA-256 fingerprint;
* phases — per-phase wall/sim seconds and counts (from the
  :class:`~repro.device.profiler.Profiler` span consumer);
* peaks — peak bytes per memory tier (device / store / cache /
  workspace);
* metrics — flat scalar metrics (speedups, hit rates, error, counters);
* floors — within-run minimum thresholds (e.g. the kernels gate's
  fused-vs-reference speedup floor) checked by ``repro ledger check``.

Cross-run gating compares two records metric-by-metric with relative
thresholds plus absolute epsilons (so a 2 ms phase jittering by 50% does
not fail a build).  Regression direction is inferred from the metric
name: byte/seconds/error/miss metrics must not grow, speedup/hit-rate
metrics must not shrink, everything else is informational.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import ReproError

__all__ = [
    "LEDGER_VERSION",
    "Comparison",
    "LedgerError",
    "LedgerRecord",
    "MetricDelta",
    "RunRecorder",
    "Thresholds",
    "append_record",
    "check_floors",
    "compare_records",
    "flatten_numeric",
    "metric_direction",
    "read_ledger",
    "render_comparison",
    "render_record",
    "resolve_record_spec",
]

LEDGER_VERSION = 1

#: Default ledger directory, relative to the repo/cwd.
DEFAULT_LEDGER_DIR = os.path.join("benchmarks", "ledger")


class LedgerError(ReproError):
    """Malformed ledger file, record, or record spec."""


# -- direction inference ----------------------------------------------

_LOWER_BETTER_SUFFIXES = (
    "_s", "_us", "_ms", "bytes", "_error", "error_abs", "misses",
    "declined", "retries", "fallbacks", "allocs",
)
_HIGHER_BETTER_SUFFIXES = (
    "speedup", "hit_rate", "hits", "rate", "accuracy", "throughput",
    "rows_per_s",
)


def metric_direction(name: str) -> int:
    """-1 if lower is better, +1 if higher is better, 0 informational."""
    leaf = name.rsplit(".", 1)[-1]
    for suffix in _HIGHER_BETTER_SUFFIXES:
        if leaf.endswith(suffix):
            return 1
    for suffix in _LOWER_BETTER_SUFFIXES:
        if leaf.endswith(suffix):
            return -1
    return 0


# -- record ------------------------------------------------------------


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def _host_info() -> dict[str, Any]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def config_fingerprint(config: dict[str, Any]) -> str:
    """First 12 hex chars of the SHA-256 of the canonical config JSON."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class LedgerRecord:
    """One schema-versioned performance record."""

    name: str
    created_at: str = ""
    git_rev: str | None = None
    host: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""
    #: phase name -> {"wall_s": float, "sim_s": float, "count": int}
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    #: memory tier -> peak bytes
    peaks: dict[str, float] = field(default_factory=dict)
    #: flat scalar metrics (dotted names)
    metrics: dict[str, float] = field(default_factory=dict)
    #: metric name -> minimum acceptable value (within-run gate)
    floors: dict[str, float] = field(default_factory=dict)
    v: int = LEDGER_VERSION
    #: stamp git rev / host / timestamp at construction (False on load,
    #: so reading a record never mutates it)
    stamp_env: bool = True

    def __post_init__(self) -> None:
        if not self.fingerprint and self.config:
            self.fingerprint = config_fingerprint(self.config)
        if not self.stamp_env:
            return
        if not self.host:
            self.host = _host_info()
        if self.git_rev is None:
            self.git_rev = _git_rev()
        if not self.created_at:
            import datetime

            self.created_at = (
                datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%SZ")
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "v": self.v,
            "name": self.name,
            "created_at": self.created_at,
            "git_rev": self.git_rev,
            "host": self.host,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "phases": self.phases,
            "peaks": self.peaks,
            "metrics": self.metrics,
            "floors": self.floors,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LedgerRecord":
        if not isinstance(data, dict):
            raise LedgerError(
                f"ledger record must be an object, got {type(data).__name__}"
            )
        version = data.get("v")
        if version != LEDGER_VERSION:
            raise LedgerError(
                f"unsupported ledger record version {version!r} "
                f"(expected {LEDGER_VERSION})"
            )
        name = data.get("name")
        if not isinstance(name, str) or not name:
            raise LedgerError("ledger record missing non-empty 'name'")
        return cls(
            name=name,
            created_at=str(data.get("created_at", "")),
            git_rev=data.get("git_rev"),
            host=dict(data.get("host") or {}),
            config=dict(data.get("config") or {}),
            fingerprint=str(data.get("fingerprint", "")),
            phases={
                str(k): dict(v)
                for k, v in (data.get("phases") or {}).items()
            },
            peaks={
                str(k): float(v)
                for k, v in (data.get("peaks") or {}).items()
            },
            metrics={
                str(k): float(v)
                for k, v in (data.get("metrics") or {}).items()
                if v is not None
            },
            floors={
                str(k): float(v)
                for k, v in (data.get("floors") or {}).items()
            },
            v=LEDGER_VERSION,
            stamp_env=False,
        )

    def flat_metrics(self) -> dict[str, float]:
        """Every gateable scalar: phases, peaks, and metrics, flattened."""
        flat: dict[str, float] = {}
        for phase, entry in sorted(self.phases.items()):
            flat[f"phase.{phase}.wall_s"] = float(entry.get("wall_s", 0.0))
            sim = float(entry.get("sim_s", 0.0))
            if sim:
                flat[f"phase.{phase}.sim_s"] = sim
        for tier, peak in sorted(self.peaks.items()):
            flat[f"peak.{tier}.bytes"] = float(peak)
        for name, value in sorted(self.metrics.items()):
            flat[name] = float(value)
        return flat


# -- persistence -------------------------------------------------------


def append_record(path: str, record: LedgerRecord) -> None:
    """Append one record to a JSONL ledger file (creating parents)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record.to_dict(), sort_keys=True,
                            separators=(",", ":")))
        fh.write("\n")


def read_ledger(path: str) -> list[LedgerRecord]:
    """Read every record from a ledger file, tolerating a torn tail."""
    if not os.path.exists(path):
        raise LedgerError(f"ledger file not found: {path}")
    records: list[LedgerRecord] = []
    raw: list[tuple[int, str]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if stripped:
                raw.append((lineno, stripped))
    last_index = len(raw) - 1
    for index, (lineno, line) in enumerate(raw):
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == last_index and index > 0:
                break  # torn tail from an interrupted append
            raise LedgerError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
        try:
            records.append(LedgerRecord.from_dict(data))
        except LedgerError as exc:
            raise LedgerError(f"{path}:{lineno}: {exc}") from exc
    return records


def resolve_record_spec(spec: str) -> LedgerRecord:
    """Resolve ``PATH`` or ``PATH@INDEX`` to one record.

    ``INDEX`` may be negative (Python semantics); the default is ``-1``,
    the most recently appended record.
    """
    path, sep, index_text = spec.rpartition("@")
    if sep and path and not os.path.exists(spec):
        try:
            index = int(index_text)
        except ValueError:
            path, index = spec, -1
    else:
        path, index = spec, -1
    records = read_ledger(path)
    if not records:
        raise LedgerError(f"ledger file has no complete records: {path}")
    try:
        return records[index]
    except IndexError:
        raise LedgerError(
            f"record index {index} out of range for {path} "
            f"({len(records)} records)"
        ) from None


# -- comparison / gating ----------------------------------------------


@dataclass(frozen=True)
class Thresholds:
    """Regression tolerances for :func:`compare_records`.

    Relative tolerances are fractions (0.25 = 25%); the absolute
    epsilons suppress noise on tiny values (a 0.5 ms phase doubling is
    not a regression worth failing a build over).
    """

    wall_tol: float = 0.25
    peak_tol: float = 0.05
    metric_tol: float = 0.10
    wall_abs_s: float = 1e-3
    peak_abs_bytes: float = 1024.0

    def for_metric(self, name: str) -> tuple[float, float]:
        """(relative tolerance, absolute epsilon) for one flat metric."""
        if name.endswith("_s") or name.endswith("_us") or name.endswith(
            "_ms"
        ):
            # Wall-clock metrics jitter with machine load; they get the
            # loosest relative tolerance plus an absolute epsilon.
            return self.wall_tol, self.wall_abs_s
        if name.startswith("peak.") or name.endswith("bytes"):
            return self.peak_tol, self.peak_abs_bytes
        return self.metric_tol, 0.0


@dataclass
class MetricDelta:
    """One row of a record-vs-record comparison."""

    name: str
    base: float | None
    new: float | None
    direction: int  # -1 lower-better, +1 higher-better, 0 info
    regressed: bool

    @property
    def delta(self) -> float | None:
        if self.base is None or self.new is None:
            return None
        return self.new - self.base

    @property
    def rel_delta(self) -> float | None:
        if self.base is None or self.new is None or self.base == 0:
            return None
        return (self.new - self.base) / abs(self.base)


@dataclass
class Comparison:
    """Full comparison of two ledger records."""

    base: LedgerRecord
    new: LedgerRecord
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_records(
    base: LedgerRecord,
    new: LedgerRecord,
    thresholds: Thresholds | None = None,
) -> Comparison:
    """Diff two records metric-by-metric; flag threshold regressions."""
    thresholds = thresholds or Thresholds()
    base_flat = base.flat_metrics()
    new_flat = new.flat_metrics()
    deltas: list[MetricDelta] = []
    for name in sorted(set(base_flat) | set(new_flat)):
        base_value = base_flat.get(name)
        new_value = new_flat.get(name)
        direction = metric_direction(name)
        regressed = False
        if (
            direction != 0
            and base_value is not None
            and new_value is not None
        ):
            rel_tol, abs_eps = thresholds.for_metric(name)
            if direction < 0:  # lower is better: fail on growth
                limit = base_value * (1.0 + rel_tol) + abs_eps
                regressed = new_value > limit
            else:  # higher is better: fail on shrinkage
                limit = base_value * (1.0 - rel_tol) - abs_eps
                regressed = new_value < limit
        deltas.append(
            MetricDelta(
                name=name,
                base=base_value,
                new=new_value,
                direction=direction,
                regressed=regressed,
            )
        )
    return Comparison(base=base, new=new, deltas=deltas)


def check_floors(record: LedgerRecord) -> list[str]:
    """Within-run gate: each floored metric must meet its minimum."""
    failures: list[str] = []
    flat = record.flat_metrics()
    for name in sorted(record.floors):
        minimum = record.floors[name]
        value = flat.get(name)
        if value is None:
            failures.append(f"floor {name}: metric missing from record")
        elif value < minimum:
            failures.append(
                f"floor {name}: {value:.4f} < required {minimum:.4f}"
            )
    return failures


# -- rendering ---------------------------------------------------------


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_record(record: LedgerRecord) -> str:
    """Human-readable single-record view."""
    from repro.bench.reporting import format_table

    lines = [
        f"name:        {record.name}",
        f"created_at:  {record.created_at}",
        f"git_rev:     {record.git_rev or '-'}",
        f"fingerprint: {record.fingerprint or '-'}",
        f"host:        {record.host.get('platform', '-')}",
    ]
    flat = record.flat_metrics()
    rows = [[name, _fmt(value)] for name, value in flat.items()]
    table = format_table(["metric", "value"], rows, title="metrics")
    out = "\n".join(lines) + "\n\n" + table
    if record.floors:
        floor_rows = [
            [name, _fmt(minimum)]
            for name, minimum in sorted(record.floors.items())
        ]
        out += "\n\n" + format_table(
            ["metric", "floor"], floor_rows, title="floors"
        )
    return out


_DIRECTION_LABEL = {-1: "lower", 1: "higher", 0: "info"}


def render_comparison(comparison: Comparison) -> str:
    """Per-metric delta table; regressions are marked ``REGRESSED``."""
    from repro.bench.reporting import format_table

    rows = []
    for d in comparison.deltas:
        rel = d.rel_delta
        rows.append(
            [
                d.name,
                _fmt(d.base),
                _fmt(d.new),
                _fmt(d.delta),
                "-" if rel is None else f"{100.0 * rel:+.1f}%",
                _DIRECTION_LABEL[d.direction],
                "REGRESSED" if d.regressed else "ok",
            ]
        )
    title = (
        f"ledger compare: {comparison.base.name} "
        f"[{comparison.base.fingerprint or '?'}] -> "
        f"{comparison.new.name} [{comparison.new.fingerprint or '?'}]"
    )
    table = format_table(
        ["metric", "base", "new", "delta", "rel", "better", "status"],
        rows,
        title=title,
    )
    verdict = (
        "OK: no regressions beyond thresholds"
        if comparison.ok
        else f"FAIL: {len(comparison.regressions)} regression(s)"
    )
    return table + "\n\n" + verdict


# -- in-process run recording ------------------------------------------


class RunRecorder:
    """Builds a :class:`LedgerRecord` from a live traced run.

    Attach :meth:`consume` to the tracer via a
    :class:`~repro.obs.trace.CallbackSink`; phase spans feed the
    embedded :class:`~repro.device.profiler.Profiler`, named top-level
    spans are recorded as phases too, and span attributes carrying
    ``peak_bytes`` contribute to the device peak.
    """

    #: span names recorded as phases in addition to kind="phase" spans
    SPAN_PHASES = frozenset(
        {
            "buffalo.iteration",
            "train.epoch",
            "train.micro_batch",
            "pipeline.block_gen",
            "pipeline.stage_features",
            "pipeline.compute",
            "store.prefetch",
        }
    )

    def __init__(self) -> None:
        from repro.device.profiler import Profiler

        self.profiler = Profiler()
        self.span_phases: dict[str, dict[str, float]] = {}
        self.device_peak_bytes = 0.0

    def consume(self, event: dict) -> None:
        self.profiler.consume(event)
        if not isinstance(event, dict) or event.get("type") != "span":
            return
        name = event.get("name")
        if name in self.SPAN_PHASES:
            entry = self.span_phases.setdefault(
                name, {"wall_s": 0.0, "sim_s": 0.0, "count": 0}
            )
            entry["wall_s"] += float(event.get("duration_s", 0.0))
            entry["count"] += 1
        attrs = event.get("attrs")
        if isinstance(attrs, dict):
            peak = attrs.get("peak_bytes")
            if isinstance(peak, (int, float)):
                self.device_peak_bytes = max(
                    self.device_peak_bytes, float(peak)
                )

    def phases(self) -> dict[str, dict[str, float]]:
        """Merged phase table: profiler phases + recorded span phases."""
        merged: dict[str, dict[str, float]] = {}
        for name, record in self.profiler.phases.items():
            merged[name] = {
                "wall_s": record.wall_s,
                "sim_s": record.sim_s,
                "count": record.count,
            }
        for name, entry in self.span_phases.items():
            merged.setdefault(name, dict(entry))
        return merged


def flatten_numeric(
    data: Any, prefix: str = "", *, _out: dict[str, float] | None = None
) -> dict[str, float]:
    """Flatten nested dicts/lists to dotted-name scalar leaves.

    Non-numeric leaves (strings, None, bools) are dropped; list items
    are indexed (``a.0.b``).  Used to turn an experiment's ``data``
    payload into gateable ledger metrics.
    """
    out = _out if _out is not None else {}
    if isinstance(data, dict):
        for key in sorted(data, key=str):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            flatten_numeric(data[key], child_prefix, _out=out)
    elif isinstance(data, (list, tuple)):
        for index, item in enumerate(data):
            child_prefix = f"{prefix}.{index}" if prefix else str(index)
            flatten_numeric(item, child_prefix, _out=out)
    elif isinstance(data, bool):
        pass
    elif isinstance(data, (int, float)):
        if prefix:
            out[prefix] = float(data)
    return out
