"""Memory timeline: per-iteration multi-tier resident-bytes sampling.

The recorder subscribes to the four memory tiers of a Buffalo run —

* **device** — :class:`~repro.device.device.SimulatedGPU` allocation
  ledger (``live_bytes`` / ``peak_bytes``);
* **store** — :class:`~repro.store.feature_store.FeatureStore`
  host-resident bytes (hot cache + slots + staged gathers);
* **cache** — :class:`~repro.device.feature_cache.FeatureCache`
  pinned/LRU rows resident on the device;
* **workspace** — the kernel :class:`~repro.kernels.workspace.Workspace`
  arena bytes;

and takes one labelled sample per micro-batch (plus iteration
boundaries), producing the real-run analogue of the paper's Fig. 6
memory-over-time plot.  Samples export as JSONL and render as an
aligned ASCII table or CSV via ``repro trace timeline``.

Disabled-mode cost: the trainer hook is a single ``is not None`` check;
no recorder object exists unless ``--timeline`` was passed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError

__all__ = [
    "MemoryTimelineRecorder",
    "TimelineSample",
    "load_timeline",
    "render_timeline",
    "write_timeline",
]

TIMELINE_VERSION = 1

TIERS = ("device", "store", "cache", "workspace")


class TimelineError(ReproError):
    """Malformed timeline file or sample."""


@dataclass(frozen=True)
class TimelineSample:
    """One multi-tier snapshot."""

    index: int
    iteration: int
    label: str
    t_s: float
    device_live_bytes: float
    device_peak_bytes: float
    store_resident_bytes: float
    cache_resident_bytes: float
    workspace_bytes: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "v": TIMELINE_VERSION,
            "index": self.index,
            "iteration": self.iteration,
            "label": self.label,
            "t_s": self.t_s,
            "device_live_bytes": self.device_live_bytes,
            "device_peak_bytes": self.device_peak_bytes,
            "store_resident_bytes": self.store_resident_bytes,
            "cache_resident_bytes": self.cache_resident_bytes,
            "workspace_bytes": self.workspace_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TimelineSample":
        try:
            return cls(
                index=int(data["index"]),
                iteration=int(data["iteration"]),
                label=str(data["label"]),
                t_s=float(data["t_s"]),
                device_live_bytes=float(data["device_live_bytes"]),
                device_peak_bytes=float(data["device_peak_bytes"]),
                store_resident_bytes=float(data["store_resident_bytes"]),
                cache_resident_bytes=float(data["cache_resident_bytes"]),
                workspace_bytes=float(data["workspace_bytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TimelineError(f"malformed timeline sample: {exc}") from exc


class MemoryTimelineRecorder:
    """Samples the four memory tiers on demand.

    Any tier source may be ``None`` (e.g. an in-memory run has no
    feature store); that tier then reads 0.  Sources are read through
    their public byte properties, so sampling allocates nothing on the
    instrumented objects.
    """

    def __init__(
        self,
        device: Any = None,
        store: Any = None,
        cache: Any = None,
        workspace: Any = None,
        *,
        max_samples: int = 100_000,
    ) -> None:
        self.device = device
        self.store = store
        self.cache = cache
        self.workspace = workspace
        self.max_samples = int(max_samples)
        self.samples: list[TimelineSample] = []
        self.dropped = 0
        self._iteration = 0
        import time

        self._clock = time.perf_counter
        self._t0 = self._clock()

    def begin_iteration(self, iteration: int) -> None:
        self._iteration = int(iteration)
        self.sample("iteration_begin")

    @staticmethod
    def _read(obj: Any, attr: str) -> float:
        if obj is None:
            return 0.0
        value = getattr(obj, attr, 0)
        return float(value() if callable(value) else value)

    def sample(self, label: str) -> TimelineSample | None:
        """Record one snapshot; returns it (None once at capacity)."""
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return None
        s = TimelineSample(
            index=len(self.samples),
            iteration=self._iteration,
            label=label,
            t_s=self._clock() - self._t0,
            device_live_bytes=self._read(self.device, "live_bytes"),
            device_peak_bytes=self._read(self.device, "peak_bytes"),
            store_resident_bytes=self._read(self.store, "resident_bytes"),
            cache_resident_bytes=self._read(self.cache, "resident_bytes"),
            workspace_bytes=self._read(self.workspace, "nbytes"),
        )
        self.samples.append(s)
        return s

    def tier_peaks(self) -> dict[str, float]:
        """Maximum observed bytes per tier across all samples."""
        peaks = {tier: 0.0 for tier in TIERS}
        for s in self.samples:
            peaks["device"] = max(peaks["device"], s.device_live_bytes,
                                  s.device_peak_bytes)
            peaks["store"] = max(peaks["store"], s.store_resident_bytes)
            peaks["cache"] = max(peaks["cache"], s.cache_resident_bytes)
            peaks["workspace"] = max(peaks["workspace"], s.workspace_bytes)
        return peaks

    def to_jsonl(self, path: str) -> None:
        write_timeline(path, self.samples)


def write_timeline(path: str, samples: list[TimelineSample]) -> None:
    """Write samples as one compact JSON object per line."""
    import os

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for s in samples:
            fh.write(json.dumps(s.to_dict(), separators=(",", ":")))
            fh.write("\n")


def load_timeline(path: str) -> list[TimelineSample]:
    """Read a timeline JSONL file, tolerating a torn trailing line."""
    from repro.obs.trace import TraceReadError, read_trace_events

    try:
        events, _skipped = read_trace_events(path, allow_partial_tail=True)
    except TraceReadError as exc:
        raise TimelineError(str(exc)) from exc
    return [TimelineSample.from_dict(e) for e in events]


def _fmt_bytes(value: float) -> str:
    if value >= 1024 * 1024:
        return f"{value / (1024 * 1024):.2f}M"
    if value >= 1024:
        return f"{value / 1024:.1f}K"
    return f"{value:.0f}"


def render_timeline(
    samples: list[TimelineSample], *, csv: bool = False, width: int = 24
) -> str:
    """Aligned ASCII (default) or CSV view of a timeline.

    The ASCII view appends a bar column scaling device live bytes
    against the run-wide maximum across all tiers, giving a quick
    Fig. 6-style silhouette in the terminal.
    """
    header = [
        "idx", "iter", "label", "t_s",
        "device_live", "device_peak", "store", "cache", "workspace",
    ]
    if csv:
        lines = [",".join(header)]
        for s in samples:
            lines.append(
                ",".join(
                    [
                        str(s.index),
                        str(s.iteration),
                        s.label,
                        f"{s.t_s:.6f}",
                        f"{s.device_live_bytes:.0f}",
                        f"{s.device_peak_bytes:.0f}",
                        f"{s.store_resident_bytes:.0f}",
                        f"{s.cache_resident_bytes:.0f}",
                        f"{s.workspace_bytes:.0f}",
                    ]
                )
            )
        return "\n".join(lines)

    from repro.bench.reporting import format_table

    scale = max(
        [s.device_live_bytes for s in samples] + [1.0]
    )
    rows = []
    for s in samples:
        bar = "#" * max(
            0, min(width, round(width * s.device_live_bytes / scale))
        )
        rows.append(
            [
                s.index,
                s.iteration,
                s.label,
                f"{s.t_s:.4f}",
                _fmt_bytes(s.device_live_bytes),
                _fmt_bytes(s.device_peak_bytes),
                _fmt_bytes(s.store_resident_bytes),
                _fmt_bytes(s.cache_resident_bytes),
                _fmt_bytes(s.workspace_bytes),
                bar,
            ]
        )
    return format_table(
        header + ["device_live_bar"],
        rows,
        title=f"memory timeline ({len(samples)} samples)",
    )
