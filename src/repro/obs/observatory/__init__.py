"""``repro.obs.observatory`` — cross-run performance observability.

Three parts (ISSUE 6):

* :mod:`~repro.obs.observatory.ledger` — durable, schema-versioned
  per-run performance records appended to ``benchmarks/ledger/*.jsonl``
  with cross-run regression gating (``repro ledger``);
* :mod:`~repro.obs.observatory.timeline` — sampling recorder for the
  four memory tiers (device ledger, feature store, feature cache,
  kernel workspace), the real-run analogue of the paper's Fig. 6;
* :mod:`~repro.obs.observatory.critical_path` — pipeline-DAG
  reconstruction from thread-tagged spans: critical-path vs. overlapped
  slack attribution plus folded-stacks export for flamegraph tools.

See ``docs/observatory.md`` for the worked tour.
"""

from repro.obs.observatory.critical_path import (
    CriticalPathReport,
    build_critical_path,
    render_critical_path,
    write_folded_stacks,
)
from repro.obs.observatory.ledger import (
    LEDGER_VERSION,
    Comparison,
    LedgerError,
    LedgerRecord,
    MetricDelta,
    RunRecorder,
    Thresholds,
    append_record,
    check_floors,
    compare_records,
    read_ledger,
    render_comparison,
    render_record,
    resolve_record_spec,
)
from repro.obs.observatory.timeline import (
    MemoryTimelineRecorder,
    TimelineSample,
    load_timeline,
    render_timeline,
    write_timeline,
)

__all__ = [
    "LEDGER_VERSION",
    "Comparison",
    "CriticalPathReport",
    "LedgerError",
    "LedgerRecord",
    "MemoryTimelineRecorder",
    "MetricDelta",
    "RunRecorder",
    "Thresholds",
    "TimelineSample",
    "append_record",
    "build_critical_path",
    "check_floors",
    "compare_records",
    "load_timeline",
    "read_ledger",
    "render_comparison",
    "render_critical_path",
    "render_record",
    "render_timeline",
    "resolve_record_spec",
    "write_folded_stacks",
    "write_timeline",
]
