"""Critical-path profiler: pipeline DAG from thread-tagged span events.

The pipelined engine runs block generation and feature staging on
worker threads ("buffalo-blockgen", "buffalo-staging") while compute
stays on the caller thread; the store prefetcher adds a third worker
("buffalo-store-prefetch").  Spans carry their emitting thread name
(schema field ``thread``), so a trace file contains enough structure to
rebuild the execution DAG:

* spans on the **main thread** (the thread owning the longest root
  span) form the critical path — their self time is wall time the run
  cannot hide;
* spans on **worker threads** are overlapped slack — busy time that the
  pipeline hid behind the critical path (or failed to, when it exceeds
  the main-thread interval).

The report attributes main-thread wall time to named spans
(self time = duration minus same-thread child durations) and exports a
folded-stacks file (``thread;parent;child  microseconds``) consumable
by standard flamegraph tools (flamegraph.pl, speedscope, inferno).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ReproError

__all__ = [
    "CriticalPathReport",
    "SpanNode",
    "build_critical_path",
    "render_critical_path",
    "write_folded_stacks",
]

_UNKNOWN_THREAD = "unknown"


class CriticalPathError(ReproError):
    """Trace lacks the structure needed for critical-path analysis."""


@dataclass
class SpanNode:
    """One closed span in the reconstructed forest."""

    span_id: int
    parent_id: int | None
    name: str
    thread: str
    ts: float
    duration_s: float
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def end_ts(self) -> float:
        return self.ts + self.duration_s

    @property
    def self_s(self) -> float:
        """Duration minus same-thread children (clamped at zero)."""
        child_total = sum(
            c.duration_s for c in self.children if c.thread == self.thread
        )
        return max(0.0, self.duration_s - child_total)


@dataclass
class CriticalPathReport:
    """Wall-time attribution for one traced run."""

    main_thread: str
    #: main-thread wall interval (max end - min start over its roots)
    interval_s: float
    #: span name -> (count, total self seconds) on the main thread
    critical_self_s: dict[str, tuple[int, float]]
    #: worker thread -> busy seconds (sum of root-span durations there)
    overlapped_busy_s: dict[str, float]
    #: fraction of the main interval attributed to named spans
    coverage: float
    roots: list[SpanNode] = field(default_factory=list)

    @property
    def attributed_s(self) -> float:
        return sum(t for _, t in self.critical_self_s.values())


def _build_forest(events: Iterable[dict]) -> list[SpanNode]:
    """Span events -> forest keyed by span_id/parent_id.

    A parent_id pointing at a span that never closed (or a point event)
    makes the child a root — exactly what happens to worker-thread
    spans, whose thread-local stacks give them no in-file parent.
    """
    nodes: dict[int, SpanNode] = {}
    order: list[int] = []
    for event in events:
        if not isinstance(event, dict) or event.get("type") != "span":
            continue
        span_id = event.get("span_id")
        if not isinstance(span_id, int):
            continue
        node = SpanNode(
            span_id=span_id,
            parent_id=event.get("parent_id"),
            name=str(event.get("name", "")),
            thread=str(event.get("thread") or _UNKNOWN_THREAD),
            ts=float(event.get("ts", 0.0)),
            duration_s=float(event.get("duration_s", 0.0)),
        )
        nodes[span_id] = node
        order.append(span_id)
    roots: list[SpanNode] = []
    for span_id in order:
        node = nodes[span_id]
        parent = (
            nodes.get(node.parent_id)
            if node.parent_id is not None
            else None
        )
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.ts, n.span_id))
    roots.sort(key=lambda n: (n.ts, n.span_id))
    return roots


def _iter_nodes(roots: list[SpanNode]) -> Iterable[SpanNode]:
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def build_critical_path(
    events: Iterable[dict], *, main_thread: str | None = None
) -> CriticalPathReport:
    """Attribute wall time to critical path vs. overlapped slack.

    ``main_thread`` defaults to the thread owning the longest root span
    (the epoch/iteration wrapper lives there by construction).
    """
    roots = _build_forest(events)
    if not roots:
        raise CriticalPathError("trace contains no closed spans")
    if main_thread is None:
        longest = max(roots, key=lambda n: n.duration_s)
        main_thread = longest.thread

    main_roots = [r for r in roots if r.thread == main_thread]
    if not main_roots:
        raise CriticalPathError(
            f"no root spans on thread {main_thread!r}"
        )
    start = min(r.ts for r in main_roots)
    end = max(r.end_ts for r in main_roots)
    interval_s = max(0.0, end - start)

    critical: dict[str, list[float]] = {}
    for node in _iter_nodes(main_roots):
        if node.thread != main_thread:
            continue  # child emitted on a worker thread: overlapped
        entry = critical.setdefault(node.name, [0, 0.0])
        entry[0] += 1
        entry[1] += node.self_s

    overlapped: dict[str, float] = {}
    for root in roots:
        if root.thread == main_thread:
            continue
        overlapped[root.thread] = (
            overlapped.get(root.thread, 0.0) + root.duration_s
        )
    # Worker-thread descendants of main-thread spans count as slack too.
    for node in _iter_nodes(main_roots):
        for child in node.children:
            if child.thread != main_thread:
                overlapped[child.thread] = (
                    overlapped.get(child.thread, 0.0) + child.duration_s
                )

    attributed = sum(t for _, t in critical.values())
    coverage = attributed / interval_s if interval_s > 0 else 1.0
    return CriticalPathReport(
        main_thread=main_thread,
        interval_s=interval_s,
        critical_self_s={
            name: (int(count), total)
            for name, (count, total) in sorted(critical.items())
        },
        overlapped_busy_s=dict(sorted(overlapped.items())),
        coverage=coverage,
        roots=roots,
    )


def render_critical_path(report: CriticalPathReport) -> str:
    """Two tables: critical-path self time and per-thread slack."""
    from repro.bench.reporting import format_table

    interval = report.interval_s or 1.0
    rows = []
    for name, (count, self_s) in sorted(
        report.critical_self_s.items(),
        key=lambda item: -item[1][1],
    ):
        rows.append(
            [
                name,
                count,
                f"{self_s:.6f}",
                f"{100.0 * self_s / interval:.1f}%",
            ]
        )
    critical_table = format_table(
        ["span", "count", "self_s", "share"],
        rows,
        title=(
            f"critical path on {report.main_thread!r} "
            f"(interval {report.interval_s:.6f}s, "
            f"coverage {100.0 * report.coverage:.1f}%)"
        ),
    )
    if not report.overlapped_busy_s:
        return critical_table
    slack_rows = []
    for thread, busy in report.overlapped_busy_s.items():
        slack_rows.append(
            [
                thread,
                f"{busy:.6f}",
                f"{100.0 * min(busy, interval) / interval:.1f}%",
            ]
        )
    slack_table = format_table(
        ["thread", "busy_s", "overlap"],
        slack_rows,
        title="overlapped slack (worker threads)",
    )
    return critical_table + "\n\n" + slack_table


def write_folded_stacks(
    report: CriticalPathReport, path: str
) -> int:
    """Write folded stacks (``thread;a;b value_us``) for flamegraphs.

    Every span contributes its *self* time at its stack position, so
    the flamegraph's widths sum to real wall time per thread.  Returns
    the number of folded lines written.
    """
    import os

    folded: dict[str, int] = {}

    def walk(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{node.name}" if prefix else node.name
        micros = int(round(node.self_s * 1e6))
        if micros > 0:
            key = f"{node.thread};{stack}"
            folded[key] = folded.get(key, 0) + micros
        for child in node.children:
            # A cross-thread child starts a fresh stack on its thread.
            walk(child, stack if child.thread == node.thread else "")

    for root in report.roots:
        walk(root, "")

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for key in sorted(folded):
            fh.write(f"{key} {folded[key]}\n")
    return len(folded)
