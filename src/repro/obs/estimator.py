"""Estimator-accuracy telemetry (paper Table III, live).

Every scheduled bucket group carries the Eq. 1–2 memory prediction
(:attr:`BucketGroup.estimated_bytes`); the simulated device reports the
group's concrete peak while its micro-batch trains.  Pairing the two per
group turns the paper's one-off estimator-accuracy benchmark into a live
signal: a signed relative-error histogram in the metrics registry plus a
bounded ring of raw samples for offline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import (
    BYTE_BUCKETS,
    ESTIMATOR_ERROR_BUCKETS,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.trace import get_tracer

__all__ = ["GroupMemSample", "EstimatorTelemetry"]

REL_ERROR_METRIC = "buffalo.estimator_rel_error"
PREDICTED_METRIC = "buffalo.estimator_predicted_bytes"
ACTUAL_METRIC = "buffalo.estimator_actual_bytes"


@dataclass(frozen=True)
class GroupMemSample:
    """Predicted vs. actual peak memory of one bucket group."""

    iteration: int
    group_index: int
    predicted_bytes: float
    actual_bytes: float

    @property
    def rel_error(self) -> float:
        """Signed (predicted - actual) / actual; 0 when actual is 0."""
        if self.actual_bytes <= 0:
            return 0.0
        return (self.predicted_bytes - self.actual_bytes) / self.actual_bytes

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "group_index": self.group_index,
            "predicted_bytes": self.predicted_bytes,
            "actual_bytes": self.actual_bytes,
            "rel_error": self.rel_error,
        }


class EstimatorTelemetry:
    """Accumulates per-group predicted-vs-actual memory samples.

    Args:
        registry: metrics registry fed by each sample (defaults to the
            process-wide one).
        max_samples: raw-sample ring size; the histogram keeps full
            counts regardless.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        max_samples: int = 4096,
    ) -> None:
        self.registry = registry if registry is not None else get_metrics()
        self.max_samples = int(max_samples)
        self.samples: list[GroupMemSample] = []
        self._n_recorded = 0

    # ------------------------------------------------------------------
    def record_iteration(
        self,
        iteration: int,
        predicted_bytes: list[float],
        actual_bytes: list[int],
    ) -> list[GroupMemSample]:
        """Record one iteration's groups; lists are index-aligned.

        ``actual_bytes`` may be empty (training without a device), in
        which case nothing is recorded.
        """
        if not actual_bytes:
            return []
        rel_hist = self.registry.histogram(
            REL_ERROR_METRIC,
            ESTIMATOR_ERROR_BUCKETS,
            help="signed (predicted - actual) / actual per bucket group",
        )
        pred_hist = self.registry.histogram(
            PREDICTED_METRIC, BYTE_BUCKETS,
            help="Eq. 2 predicted peak bytes per bucket group",
        )
        act_hist = self.registry.histogram(
            ACTUAL_METRIC, BYTE_BUCKETS,
            help="simulated-device peak bytes per bucket group",
        )
        tracer = get_tracer()
        recorded = []
        for index, (predicted, actual) in enumerate(
            zip(predicted_bytes, actual_bytes)
        ):
            sample = GroupMemSample(
                iteration=iteration,
                group_index=index,
                predicted_bytes=float(predicted),
                actual_bytes=float(actual),
            )
            recorded.append(sample)
            rel_hist.observe(sample.rel_error)
            pred_hist.observe(sample.predicted_bytes)
            act_hist.observe(sample.actual_bytes)
            if tracer.enabled:
                tracer.event(
                    "estimator.group_memory", sample.to_dict()
                )
        self._n_recorded += len(recorded)
        self.samples.extend(recorded)
        if len(self.samples) > self.max_samples:
            del self.samples[: len(self.samples) - self.max_samples]
        return recorded

    # ------------------------------------------------------------------
    @property
    def n_recorded(self) -> int:
        return self._n_recorded

    def mean_abs_rel_error(self) -> float:
        """Mean |rel error| over retained samples (Table III's metric)."""
        if not self.samples:
            return 0.0
        return sum(abs(s.rel_error) for s in self.samples) / len(
            self.samples
        )

    def to_dict(self) -> dict:
        hist = self.registry.get(REL_ERROR_METRIC)
        return {
            "n_recorded": self._n_recorded,
            "mean_abs_rel_error": self.mean_abs_rel_error(),
            "rel_error_histogram": (
                hist.to_dict() if hist is not None else None
            ),
            "samples": [s.to_dict() for s in self.samples],
        }
