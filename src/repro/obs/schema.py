"""Trace-event schema: the contract between emitters and consumers.

Every line of a ``--trace`` JSONL file must validate against this
schema; the CI smoke test (``tests/obs/test_smoke_trace.py``) enforces
it end-to-end so emitter drift is caught before a consumer breaks.
"""

from __future__ import annotations

import json
import numbers

from repro.errors import ReproError

__all__ = [
    "METRIC_NAMES",
    "SchemaError",
    "validate_event",
    "validate_trace_file",
]

EVENT_TYPES = frozenset({"span", "event"})

#: Canonical registry of every ``buffalo.*`` metric name the pipeline
#: may emit.  Dashboards and comparison scripts key on these strings;
#: an unregistered name is a typo until proven otherwise, and the
#: ``metric-name`` lint rule enforces exactly that.  Add new metrics
#: here (with a schema-documented meaning) before emitting them.
METRIC_NAMES = frozenset(
    {
        # core training loop (core/api.py, core/fastblock.py,
        # core/scheduler.py, core/microbatch.py)
        "buffalo.oom_retries",
        "buffalo.iterations",
        "buffalo.micro_batches_per_iter",
        "buffalo.peak_mem_bytes",
        "buffalo.block_gen_calls",
        "buffalo.block_gen_nodes",
        "buffalo.schedules",
        "buffalo.groups_per_schedule",
        "buffalo.micro_batches_generated",
        # Eq. 1-2 estimator telemetry (obs/estimator.py)
        "buffalo.estimator_rel_error",
        "buffalo.estimator_predicted_bytes",
        "buffalo.estimator_actual_bytes",
        # pipelined execution (pipeline/engine.py)
        "buffalo.pipeline.queue_wait_s",
        "buffalo.pipeline.staging_s",
        "buffalo.pipeline.iterations",
        "buffalo.pipeline.depth",
        "buffalo.pipeline.modeled_speedup",
        # cross-group feature reuse (pipeline/reuse.py)
        "buffalo.feature_cache.planned_pins",
        "buffalo.feature_cache.hits",
        "buffalo.feature_cache.misses",
        "buffalo.feature_cache.pinned_rows",
        "buffalo.feature_cache.hit_rate",
        # kernel layer (kernels/workspace.py, kernels/fused.py)
        "buffalo.kernel.workspace_bytes",
        "buffalo.kernel.workspace_peak_bytes",
        "buffalo.kernel.workspace_hits",
        "buffalo.kernel.workspace_allocs",
        "buffalo.kernel.reduce_calls",
        "buffalo.kernel.dense_fallbacks",
        # kernel autotuning + threaded execution (kernels/fused.py,
        # kernels/tuning.py, kernels/parallel.py)
        "buffalo.kernel.calibration_loaded",
        "buffalo.kernel.calibration_stale",
        "buffalo.kernel.calibration_miss",
        "buffalo.kernel.threaded_reduces",
        "buffalo.kernel.thread_tasks",
        # out-of-core store (store/feature_store.py, store/prefetch.py)
        "buffalo.store.prefetch_iterations",
        "buffalo.store.peak_resident_bytes",
        "buffalo.store.disk_bytes_read",
        "buffalo.store.gather_s",
        "buffalo.store.gather_bytes",
        "buffalo.store.prefetch_declined",
        # multi-device fleet (core/split_parallel.py)
        "buffalo.device.count",
        "buffalo.device.peak_bytes",
        "buffalo.device.halo_bytes",
        "buffalo.device.allreduce_bytes",
        "buffalo.device.halo_exchange_s",
        "buffalo.device.allreduce_s",
        # online serving tier (serve/request.py, serve/engine.py,
        # serve/cache.py, serve/server.py, serve/sim.py)
        "buffalo.serve.requests_total",
        "buffalo.serve.admitted_total",
        "buffalo.serve.rejected_total",
        "buffalo.serve.queue_depth",
        "buffalo.serve.queue_wait_s",
        "buffalo.serve.request_latency_s",
        "buffalo.serve.batches_total",
        "buffalo.serve.batch_occupancy",
        "buffalo.serve.batch_compute_s",
        "buffalo.serve.batch_edges",
        "buffalo.serve.predictions_total",
        "buffalo.serve.embed_cache_hits",
        "buffalo.serve.embed_cache_misses",
        "buffalo.serve.embed_cache_evictions",
        "buffalo.serve.embed_cache_bytes",
        "buffalo.serve.invalidations_total",
        "buffalo.serve.snapshot_rows",
    }
)

# field name -> (required, type-check predicate, description)
_NUMBER = lambda v: isinstance(v, numbers.Real) and not isinstance(v, bool)
_FIELDS = {
    "v": (True, lambda v: v == 1, "schema version 1"),
    "type": (True, lambda v: v in EVENT_TYPES, "span|event"),
    "name": (
        True,
        lambda v: isinstance(v, str) and len(v) > 0,
        "non-empty string",
    ),
    "kind": (True, lambda v: isinstance(v, str), "string"),
    "span_id": (
        True,
        lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
        "non-negative int",
    ),
    "parent_id": (
        True,
        lambda v: v is None
        or (isinstance(v, int) and not isinstance(v, bool) and v >= 0),
        "null or non-negative int",
    ),
    "ts": (True, _NUMBER, "unix seconds"),
    "duration_s": (
        True,
        lambda v: _NUMBER(v) and v >= 0,
        "non-negative seconds",
    ),
    "attrs": (True, lambda v: isinstance(v, dict), "object"),
    # Optional since schema v1 events predate it; the critical-path
    # profiler needs it to separate pipeline worker threads from the
    # main compute thread.
    "thread": (
        False,
        lambda v: isinstance(v, str) and len(v) > 0,
        "non-empty string (emitting thread name)",
    ),
}


class SchemaError(ReproError):
    """A trace event violates the schema."""


def validate_event(event: object) -> list[str]:
    """Return schema violations of one event (empty list = valid)."""
    if not isinstance(event, dict):
        return [f"event must be an object, got {type(event).__name__}"]
    errors = []
    for field, (required, check, description) in _FIELDS.items():
        if field not in event:
            if required:
                errors.append(f"missing field {field!r} ({description})")
            continue
        if not check(event[field]):
            errors.append(
                f"field {field!r} invalid: {event[field]!r} "
                f"(expected {description})"
            )
    for field in event:
        if field not in _FIELDS:
            errors.append(f"unknown field {field!r}")
    return errors


def validate_trace_file(path: str, *, allow_partial_tail: bool = True) -> int:
    """Validate every line of a JSONL trace; returns the event count.

    A torn *final* line (a producer interrupted mid-write) is skipped
    when ``allow_partial_tail`` is true; malformed JSON anywhere else,
    or a schema-invalid event, raises with the offending line number.

    Raises:
        SchemaError: on the first malformed line or invalid event.
    """
    raw: list[tuple[int, str]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if stripped:
                raw.append((lineno, stripped))
    count = 0
    last_index = len(raw) - 1
    for index, (lineno, line) in enumerate(raw):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            # A torn tail needs at least one complete line before it.
            if index == last_index and index > 0 and allow_partial_tail:
                break
            raise SchemaError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
        errors = validate_event(event)
        if errors:
            raise SchemaError(
                f"{path}:{lineno}: invalid event: {'; '.join(errors)}"
            )
        count += 1
    return count
