"""``repro.obs`` — observability for the Buffalo pipeline.

Three pillars (ISSUE 1):

* :mod:`repro.obs.trace` — nested spans as JSONL events, no-op when no
  sink is attached;
* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  fixed-bucket histograms with a deterministic snapshot;
* :mod:`repro.obs.estimator` — live predicted-vs-actual peak-memory
  telemetry per scheduled bucket group (paper Table III).

See ``docs/observability.md`` for the worked tour.
"""

from repro.obs.estimator import EstimatorTelemetry, GroupMemSample
from repro.obs.metrics import (
    BYTE_BUCKETS,
    ESTIMATOR_ERROR_BUCKETS,
    LATENCY_SECONDS_BUCKETS,
    SMALL_COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    get_metrics,
    set_metrics,
)
from repro.obs.schema import (
    METRIC_NAMES,
    SchemaError,
    validate_event,
    validate_trace_file,
)
from repro.obs.trace import (
    CallbackSink,
    JsonlFileSink,
    ListSink,
    Span,
    TraceReadError,
    Tracer,
    get_tracer,
    read_trace_events,
    set_tracer,
)

__all__ = [
    "BYTE_BUCKETS",
    "CallbackSink",
    "Counter",
    "ESTIMATOR_ERROR_BUCKETS",
    "EstimatorTelemetry",
    "Gauge",
    "GroupMemSample",
    "Histogram",
    "JsonlFileSink",
    "LATENCY_SECONDS_BUCKETS",
    "ListSink",
    "METRIC_NAMES",
    "MetricsRegistry",
    "SMALL_COUNT_BUCKETS",
    "SchemaError",
    "Span",
    "TraceReadError",
    "Tracer",
    "bucket_quantile",
    "get_metrics",
    "get_tracer",
    "read_trace_events",
    "set_metrics",
    "set_tracer",
    "validate_event",
    "validate_trace_file",
]
