"""Exception hierarchy for the Buffalo reproduction.

All library errors derive from :class:`ReproError` so callers can catch
library failures without masking programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph structure or graph operation."""


class DatasetError(ReproError):
    """Unknown dataset name or invalid dataset parameters."""


class StoreError(DatasetError):
    """A dataset store is missing, torn, or inconsistent on disk.

    Subclasses :class:`DatasetError` so existing ``except DatasetError``
    handlers keep working; messages must name the offending path (the
    ``error-context`` lint rule enforces this).
    """


class DeviceError(ReproError):
    """Invalid simulated-device operation (double free, bad handle, ...)."""


class DeviceOutOfMemoryError(DeviceError):
    """Raised when an allocation would exceed the device memory budget.

    Mirrors CUDA's OOM: the attempted allocation is rejected, existing
    allocations stay live, and the caller may free memory and retry.

    Attributes:
        requested: bytes the failed allocation asked for.
        live: bytes currently allocated on the device.
        capacity: total device capacity in bytes.
    """

    def __init__(self, requested: int, live: int, capacity: int) -> None:
        self.requested = int(requested)
        self.live = int(live)
        self.capacity = int(capacity)
        super().__init__(
            f"device out of memory: requested {self.requested} B with "
            f"{self.live} B live of {self.capacity} B capacity"
        )


class SchedulingError(ReproError):
    """The Buffalo scheduler could not produce a feasible plan."""


class PartitioningError(ReproError):
    """A graph partitioner failed or was given invalid arguments."""


class AutogradError(ReproError):
    """Invalid autograd usage (backward on non-scalar, detached graph, ...)."""


class ConvergenceError(ReproError):
    """Training diverged or produced non-finite values."""
