"""Command-line interface.

Subcommands::

    python -m repro datasets                    # Table II-style stats
    python -m repro train --dataset ogbn_arxiv  # Buffalo training
    python -m repro train --trace t.jsonl --metrics m.json  # + telemetry
    python -m repro train --data-store d.store  # out-of-core training
    python -m repro schedule --dataset reddit   # inspect a plan
    python -m repro serve --dataset ogbn_arxiv  # live serving smoke
    python -m repro store build cora.npz cora.store  # convert to a store
    python -m repro store info cora.store       # inspect a store
    python -m repro trace summarize t.jsonl     # per-phase breakdown
    python -m repro trace timeline mem.jsonl    # four-tier memory view
    python -m repro trace critical-path t.jsonl --folded out.folded
    python -m repro experiment fig10            # regenerate a figure
    python -m repro experiment --list
    python -m repro bench kernels --check       # kernel perf gate
    python -m repro ledger show benchmarks/ledger/kernels.jsonl
    python -m repro ledger compare A.jsonl@0 A.jsonl  # regression diff
    python -m repro ledger check R.jsonl --baseline B.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import sys
from typing import Sequence

EXPERIMENTS = (
    "fig01",
    "tab02",
    "fig02",
    "fig04",
    "fig05",
    "fig06",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "tab03",
    "tab04",
    "sec_g",
    "ablation_grouping",
    "ablation_estimator",
    "ablation_feature_cache",
    "pipeline_overlap",
    "store_io",
    "kernels",
    "split_scaling",
    "serve_load",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Buffalo reproduction: memory-efficient bucketized "
        "GNN training (HPCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="show dataset statistics")
    datasets.add_argument("--scale", type=float, default=0.25)
    datasets.add_argument("--seed", type=int, default=0)

    train = sub.add_parser("train", help="train a GNN with Buffalo")
    train.add_argument("--dataset", default="ogbn_arxiv")
    train.add_argument(
        "--data-store",
        default=None,
        metavar="PATH",
        help="train from an on-disk dataset store (built with "
        "`repro store build`) instead of generating --dataset in memory",
    )
    train.add_argument("--scale", type=float, default=0.1)
    train.add_argument(
        "--aggregator",
        default="mean",
        choices=["mean", "sum", "max", "pool", "lstm", "attention", "gcn"],
    )
    train.add_argument("--hidden", type=int, default=64)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--heads", type=int, default=1)
    train.add_argument("--dropout", type=float, default=0.0)
    train.add_argument("--budget-gb", type=float, default=24.0)
    train.add_argument("--epochs", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=256)
    train.add_argument(
        "--fanouts", default="10,25", help="comma list, output layer first"
    )
    train.add_argument("--checkpoint", default=None)
    train.add_argument("--eval", action="store_true", dest="do_eval")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--devices",
        type=int,
        default=1,
        help="simulated GPU count; > 1 enables multi-device training "
        "(gradients stay bit-identical to a single device)",
    )
    train.add_argument(
        "--parallel",
        default="split",
        choices=["data", "split"],
        help="multi-device strategy with --devices > 1: 'data' "
        "replicates features and round-robins micro-batches; 'split' "
        "partitions the feature matrix and places bucket groups "
        "(halo exchange over the interconnect; see docs/distributed.md)",
    )
    train.add_argument(
        "--pipeline-depth",
        type=int,
        default=1,
        help="prefetch depth of the staged execution engine "
        "(1 = sequential Algorithm 2; gradients are identical either way)",
    )
    train.add_argument(
        "--pipeline-mode",
        default="auto",
        choices=["auto", "sync", "threaded"],
        help="auto: threads when depth > 1; sync: deterministic staged "
        "schedule without threads",
    )
    train.add_argument(
        "--reuse-features",
        action="store_true",
        help="pin feature rows shared by consecutive bucket groups in a "
        "device cache (cross-group reuse)",
    )
    train.add_argument(
        "--feature-cache-bytes",
        type=int,
        default=None,
        help="byte budget of the device feature cache used by "
        "--reuse-features (default: 10%% of device capacity)",
    )
    train.add_argument(
        "--kernel-backend",
        default="reference",
        choices=["reference", "fused"],
        help="bucketed-aggregation kernels: 'reference' keeps the dense "
        "(n, degree, feat) gather semantics bit-for-bit; 'fused' reads "
        "the CSR block directly (see docs/kernels.md)",
    )
    train.add_argument(
        "--kernel-threads",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for the fused backend's column-block "
        "sharded CSR execution (1 = serial; results are bit-for-bit "
        "identical at any count)",
    )
    train.add_argument(
        "--calibration",
        default=None,
        metavar="PATH",
        help="kernel dispatch calibration file for --kernel-backend "
        "fused (written by `repro bench kernels --tune`; default: "
        "$REPRO_KERNEL_CALIBRATION or the per-host cache file)",
    )
    train.add_argument(
        "--hot-cache-mb",
        type=float,
        default=None,
        help="hot-node cache budget (MiB) of a --data-store feature "
        "store (default 16 MiB)",
    )
    train.add_argument(
        "--host-budget-mb",
        type=float,
        default=None,
        help="soft ceiling (MiB) on host-resident feature bytes of a "
        "--data-store run; the hot cache shrinks to fit",
    )
    _add_obs_flags(train)
    train.add_argument(
        "--ledger",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="append a run-ledger record (phases, memory peaks, "
        "metrics) to PATH (default: benchmarks/ledger/train.jsonl)",
    )
    train.add_argument(
        "--timeline",
        default=None,
        metavar="PATH",
        help="record a per-micro-batch four-tier memory timeline "
        "(device/store/cache/workspace) as JSONL to PATH",
    )

    schedule = sub.add_parser(
        "schedule", help="show Buffalo's plan for one batch"
    )
    schedule.add_argument("--dataset", default="ogbn_arxiv")
    schedule.add_argument("--scale", type=float, default=0.1)
    schedule.add_argument("--budget-gb", type=float, default=24.0)
    schedule.add_argument("--aggregator", default="lstm")
    schedule.add_argument("--hidden", type=int, default=64)
    schedule.add_argument("--n-seeds", type=int, default=400)
    schedule.add_argument("--fanouts", default="10,25")
    schedule.add_argument("--seed", type=int, default=0)
    _add_obs_flags(schedule)

    serve = sub.add_parser(
        "serve",
        help="run the online serving tier against a generated request "
        "trace (docs/serving.md)",
    )
    serve.add_argument("--dataset", default="ogbn_arxiv")
    serve.add_argument("--scale", type=float, default=0.05)
    serve.add_argument("--aggregator", default="mean")
    serve.add_argument("--hidden", type=int, default=32)
    serve.add_argument(
        "--fanouts", default="10,25", help="comma list, output layer first"
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=100,
        help="number of seeded trace requests to replay",
    )
    serve.add_argument(
        "--rate-hz",
        type=float,
        default=1000.0,
        help="open-loop arrival rate of the generated trace",
    )
    serve.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        help="popularity skew exponent (higher = hotter head)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="coalescing bound: dispatch a degree-key group at this size",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="coalescing bound: dispatch a non-full group after this wait",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="admission bound; arrivals beyond it are rejected "
        "with queue_full",
    )
    serve.add_argument(
        "--cache-mb",
        type=float,
        default=8.0,
        help="embedding-cache byte budget in MiB (0 disables)",
    )
    serve.add_argument(
        "--kernel-backend",
        default="reference",
        choices=["reference", "fused"],
        help="bucketed-aggregation kernels for the serving forwards "
        "(see docs/kernels.md)",
    )
    serve.add_argument(
        "--kernel-threads",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for the fused backend's sharded CSR "
        "execution (1 = serial; bit-for-bit at any count)",
    )
    serve.add_argument("--seed", type=int, default=0)
    _add_obs_flags(serve)

    store = sub.add_parser(
        "store", help="build or inspect an on-disk dataset store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    build = store_sub.add_parser(
        "build",
        help="convert a saved .npz dataset (or a catalog name) into "
        "the chunked store layout",
    )
    build.add_argument(
        "source", help="path to a saved .npz dataset, or a dataset name"
    )
    build.add_argument("dest", help="store directory to create")
    build.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        help="feature rows per shard file (default 4096)",
    )
    build.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale when source is a catalog name",
    )
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--force",
        action="store_true",
        help="replace an existing store at dest",
    )
    info = store_sub.add_parser("info", help="summarize a store")
    info.add_argument("path", help="store directory")
    info.add_argument(
        "--verify",
        action="store_true",
        help="check every file's size and CRC32 against the manifest",
    )
    info.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON",
    )

    trace = sub.add_parser(
        "trace", help="inspect a JSONL trace produced by --trace"
    )
    trace.add_argument(
        "action",
        choices=["summarize", "timeline", "critical-path"],
        help="summarize: per-phase breakdown; timeline: render a "
        "--timeline memory file; critical-path: wall-time attribution "
        "plus folded-stacks export",
    )
    trace.add_argument("path", help="JSONL trace (or timeline) file")
    trace.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV instead of the ASCII table (timeline)",
    )
    trace.add_argument(
        "--folded",
        default=None,
        metavar="PATH",
        help="write folded stacks for flamegraph tools (critical-path)",
    )
    trace.add_argument(
        "--main-thread",
        default=None,
        metavar="NAME",
        help="critical-path main thread override (default: thread of "
        "the longest root span)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", nargs="?", default=None)
    experiment.add_argument("--list", action="store_true", dest="list_all")
    experiment.add_argument(
        "--ledger",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="append the experiment's numeric results as a ledger "
        "record (default: benchmarks/ledger/<name>.jsonl)",
    )

    bench = sub.add_parser(
        "bench", help="machine-readable micro-benchmarks (BENCH_*.json)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_kernels = bench_sub.add_parser(
        "kernels",
        help="fused vs reference kernel backends on the cut-off bucket",
    )
    bench_kernels.add_argument("--rows", type=int, default=4096)
    bench_kernels.add_argument("--degree", type=int, default=24)
    bench_kernels.add_argument("--feat", type=int, default=64)
    bench_kernels.add_argument("--repeats", type=int, default=3)
    bench_kernels.add_argument("--seed", type=int, default=0)
    bench_kernels.add_argument(
        "--out",
        default="BENCH_kernels.json",
        metavar="PATH",
        help="where to write the JSON result (default: BENCH_kernels.json)",
    )
    bench_kernels.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when fused is >10%% slower than reference on "
        "sum/mean (best-of---repeats; the CI perf-smoke gate), when "
        "tuned dispatch is >5%% slower than default on any row, or "
        "when threaded modeled speedup is below 1.3x",
    )
    bench_kernels.add_argument(
        "--tune",
        action="store_true",
        help="run the dense-vs-CSR autotuner first, write the "
        "calibration file (--calibration or the per-host default), and "
        "add the tuned-vs-default comparison rows",
    )
    bench_kernels.add_argument(
        "--calibration",
        default=None,
        metavar="PATH",
        help="calibration file to write (with --tune) or load (without); "
        "default: $REPRO_KERNEL_CALIBRATION or "
        "~/.cache/repro/kernel_calibration.json",
    )
    bench_kernels.add_argument(
        "--threads",
        type=int,
        default=0,
        metavar="N",
        help="also run the threaded-vs-serial comparison at N worker "
        "threads (bit-for-bit check + modeled speedup; 0 = skip)",
    )
    bench_kernels.add_argument(
        "--ledger",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="append the result as a ledger record "
        "(default: benchmarks/ledger/kernels.jsonl)",
    )
    bench_kernels.add_argument(
        "--baseline",
        default=None,
        metavar="RECORD",
        help="with --check, also compare against a baseline ledger "
        "record (PATH or PATH@INDEX) and fail on cross-run regressions",
    )
    bench_experiment = bench_sub.add_parser(
        "experiment",
        help="run one paper experiment as a benchmark (alias of "
        "`repro experiment NAME` with ledger support)",
    )
    bench_experiment.add_argument(
        "name", help=f"experiment name, one of: {', '.join(EXPERIMENTS)}"
    )
    bench_experiment.add_argument(
        "--ledger",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="append the experiment's numeric results as a ledger "
        "record (default: benchmarks/ledger/<name>.jsonl)",
    )

    ledger = sub.add_parser(
        "ledger", help="cross-run performance ledger (docs/observatory.md)"
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    ledger_show = ledger_sub.add_parser(
        "show", help="print one ledger record"
    )
    ledger_show.add_argument(
        "record", help="ledger PATH or PATH@INDEX (default: last record)"
    )
    ledger_compare = ledger_sub.add_parser(
        "compare",
        help="per-metric delta table of two records; exit 1 on "
        "regressions beyond thresholds",
    )
    ledger_compare.add_argument("base", help="baseline PATH[@INDEX]")
    ledger_compare.add_argument("new", help="candidate PATH[@INDEX]")
    _add_threshold_flags(ledger_compare)
    ledger_check = ledger_sub.add_parser(
        "check",
        help="gate a record against its recorded floors and, with "
        "--baseline, against another record",
    )
    ledger_check.add_argument("record", help="candidate PATH[@INDEX]")
    ledger_check.add_argument(
        "--baseline",
        default=None,
        metavar="RECORD",
        help="baseline PATH[@INDEX] for a cross-run comparison",
    )
    _add_threshold_flags(ledger_check)

    lint = sub.add_parser(
        "lint",
        help="run the project-aware linter (see docs/analysis.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to check (default: configured paths)",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="repository root holding pyproject.toml (default: cwd)",
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif"],
        dest="output_format",
        help="report format",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="A,B",
        help="comma list of rule names to run (default: all)",
    )
    lint.add_argument(
        "--concurrency",
        action="store_true",
        help="run only the whole-program concurrency rules "
        "(lock-order, blocking-under-lock, thread-escape, "
        "lock-contract, lock-discipline)",
    )
    lint.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        dest="sarif_path",
        help="additionally write a SARIF 2.1.0 report to PATH",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of grandfathered findings "
        "(default: lint-baseline.json under --root)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, including grandfathered ones",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="re-analyze every file, ignoring the result cache",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="describe the registered rules and exit",
    )
    lint.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include suppression/stale-baseline details in text output",
    )

    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write span events as JSONL to PATH",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot as JSON to PATH",
    )


def _add_threshold_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--wall-tol",
        type=float,
        default=None,
        metavar="FRAC",
        help="phase wall-time regression tolerance (default 0.25)",
    )
    parser.add_argument(
        "--peak-tol",
        type=float,
        default=None,
        metavar="FRAC",
        help="peak-bytes regression tolerance (default 0.05)",
    )
    parser.add_argument(
        "--metric-tol",
        type=float,
        default=None,
        metavar="FRAC",
        help="other-metric regression tolerance (default 0.10)",
    )


def _thresholds_from_args(args):
    from repro.obs.observatory.ledger import Thresholds

    defaults = Thresholds()
    return Thresholds(
        wall_tol=(
            defaults.wall_tol if args.wall_tol is None else args.wall_tol
        ),
        peak_tol=(
            defaults.peak_tol if args.peak_tol is None else args.peak_tol
        ),
        metric_tol=(
            defaults.metric_tol
            if args.metric_tol is None
            else args.metric_tol
        ),
    )


def _resolve_ledger_path(value: str | None, default_name: str) -> str | None:
    """``--ledger`` flag value -> concrete path (None when absent)."""
    if value is None:
        return None
    if value == "auto":
        import os

        from repro.obs.observatory.ledger import DEFAULT_LEDGER_DIR

        return os.path.join(DEFAULT_LEDGER_DIR, f"{default_name}.jsonl")
    return value


@contextlib.contextmanager
def _observability(args, extra_payload: dict | None = None):
    """Attach trace/metrics outputs for one command invocation.

    The metrics registry is reset on entry (when any output is
    requested) so the written snapshot covers exactly this run; the
    sink is detached and the files are finalized on exit, even when the
    command fails.  ``extra_payload`` entries holding callables are
    evaluated at exit (e.g. estimator-accuracy telemetry that only
    exists once training ran).
    """
    import json

    from repro.obs import JsonlFileSink, get_metrics, get_tracer

    tracer = get_tracer()
    sink = None
    if args.trace or args.metrics:
        get_metrics().reset()
    if args.trace:
        try:
            sink = tracer.add_sink(JsonlFileSink(args.trace))
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {args.trace}: {exc}")
    try:
        yield
    finally:
        if sink is not None:
            tracer.remove_sink(sink)
            sink.close()
        if args.metrics:
            payload = {"metrics": get_metrics().snapshot()}
            for key, value in (extra_payload or {}).items():
                payload[key] = value() if callable(value) else value
            try:
                with open(args.metrics, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:
                raise SystemExit(
                    f"cannot write metrics to {args.metrics}: {exc}"
                )


def _require_positive(value, flag: str) -> None:
    """Exit with a one-line message when a budget flag is non-positive."""
    if value is not None and value <= 0:
        raise SystemExit(f"{flag} must be positive, got {value}")


def _parse_fanouts(text: str) -> list[int]:
    try:
        fanouts = [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise SystemExit(f"invalid --fanouts {text!r}; expected e.g. 10,25")
    if not fanouts:
        raise SystemExit("--fanouts must contain at least one value")
    return fanouts


def _cmd_datasets(args) -> int:
    from repro.bench.reporting import format_table
    from repro.datasets import DATASET_NAMES, load

    rows = []
    for name in DATASET_NAMES:
        dataset = load(name, scale=args.scale, seed=args.seed)
        stats = dataset.stats(clustering_sample=500)
        rows.append(
            [
                name,
                stats["n_nodes"],
                stats["n_edges"],
                stats["avg_degree"],
                stats["avg_clustering"],
                "yes" if stats["power_law"] else "no",
            ]
        )
    print(
        format_table(
            ["dataset", "nodes", "edges", "avg deg", "avg coef", "power law"],
            rows,
            title=f"generated datasets at scale={args.scale}",
        )
    )
    return 0


def _train_ledger_record(args, trainer, recorder, fanouts):
    """Assemble the run-ledger record of one ``repro train`` invocation.

    Lives here (not in ``repro.obs``) because only the CLI sees the
    whole wiring: the trainer facade, its tiered memory sources, and
    the metrics registry of exactly this run.
    """
    from repro.obs import get_metrics
    from repro.obs.observatory.ledger import LedgerRecord

    config = {
        "command": "train",
        "dataset": args.dataset,
        "data_store": bool(args.data_store),
        "scale": args.scale,
        "aggregator": args.aggregator,
        "hidden": args.hidden,
        "layers": args.layers,
        "fanouts": fanouts,
        "budget_gb": args.budget_gb,
        "epochs": args.epochs,
        "batch_size": args.batch_size,
        "seed": args.seed,
        "pipeline_depth": args.pipeline_depth,
        "pipeline_mode": args.pipeline_mode,
        "reuse_features": args.reuse_features,
        "kernel_backend": args.kernel_backend,
        "kernel_threads": args.kernel_threads,
    }
    peaks: dict[str, float] = {
        "device": float(recorder.device_peak_bytes)
    }
    if trainer.store is not None:
        peaks["store"] = float(trainer.store.peak_resident_bytes)
    if trainer.feature_cache is not None:
        peaks["cache"] = float(trainer.feature_cache.resident_bytes)
    workspace = getattr(trainer.trainer.kernel, "workspace", None)
    if workspace is not None:
        peaks["workspace"] = float(workspace.peak_bytes)

    metrics: dict[str, float] = {}
    for name, payload in get_metrics().snapshot().items():
        if payload["type"] in ("counter", "gauge"):
            metrics[name] = float(payload["value"])
        elif payload["type"] == "histogram" and payload["count"]:
            metrics[f"{name}.mean"] = float(payload["mean"])
            if payload.get("p95") is not None:
                metrics[f"{name}.p95"] = float(payload["p95"])
    if trainer.telemetry.samples:
        metrics["estimator.mean_abs_rel_error"] = float(
            trainer.telemetry.mean_abs_rel_error()
        )
    if trainer.feature_cache is not None:
        metrics["feature_cache.hit_rate"] = float(
            trainer.feature_cache.hit_rate
        )
    if trainer.store is not None:
        metrics["store.hot_hit_rate"] = float(trainer.store.hot_hit_rate)
        metrics["store.disk_bytes_read"] = float(trainer.store.bytes_read)
    return LedgerRecord(
        name="train",
        config=config,
        phases=recorder.phases(),
        peaks=peaks,
        metrics=metrics,
    )


def _cmd_train(args) -> int:
    from repro.bench.workloads import budget_bytes
    from repro.core import BuffaloTrainer
    from repro.datasets import load
    from repro.device import SimulatedGPU
    from repro.gnn.footprint import ModelSpec
    from repro.training import TrainingLoop

    fanouts = _parse_fanouts(args.fanouts)
    if len(fanouts) != args.layers:
        raise SystemExit(
            f"--fanouts needs {args.layers} values for --layers {args.layers}"
        )
    _require_positive(args.budget_gb, "--budget-gb (memory budget)")
    _require_positive(args.feature_cache_bytes, "--feature-cache-bytes")
    _require_positive(args.hot_cache_mb, "--hot-cache-mb")
    _require_positive(args.host_budget_mb, "--host-budget-mb")
    _require_positive(args.devices, "--devices")
    _require_positive(args.kernel_threads, "--kernel-threads")
    if args.devices > 1:
        # The parallel trainers run the plain Algorithm 2 path; the
        # single-device execution features below are not wired through
        # them, so reject the combinations instead of ignoring flags.
        incompatible = [
            ("--data-store", args.data_store is not None),
            ("--reuse-features", args.reuse_features),
            ("--feature-cache-bytes", args.feature_cache_bytes is not None),
            ("--pipeline-depth > 1", args.pipeline_depth > 1),
            ("--pipeline-mode other than auto", args.pipeline_mode != "auto"),
            ("--kernel-backend fused", args.kernel_backend == "fused"),
            ("--kernel-threads > 1", args.kernel_threads > 1),
            ("--calibration", args.calibration is not None),
            ("--ledger", args.ledger is not None),
        ]
        if args.parallel != "split":
            incompatible.append(("--timeline", args.timeline is not None))
        rejected = [flag for flag, present in incompatible if present]
        if rejected:
            raise SystemExit(
                f"--devices {args.devices} (--parallel {args.parallel}) "
                f"does not support: {', '.join(rejected)}"
            )
    if args.data_store is not None:
        from pathlib import Path

        from repro.datasets import open_dataset
        from repro.store import is_store_path

        if not Path(args.data_store).exists():
            raise SystemExit(f"no such dataset store: {args.data_store}")
        if not is_store_path(args.data_store):
            raise SystemExit(
                f"{args.data_store} is not a dataset store "
                f"(build one with `repro store build`)"
            )
        dataset = open_dataset(
            args.data_store,
            hot_cache_bytes=(
                int(args.hot_cache_mb * 2**20)
                if args.hot_cache_mb is not None
                else None
            ),
            host_budget_bytes=(
                int(args.host_budget_mb * 2**20)
                if args.host_budget_mb is not None
                else None
            ),
        )
    else:
        dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    spec = ModelSpec(
        dataset.feat_dim,
        args.hidden,
        dataset.n_classes,
        args.layers,
        args.aggregator,
        heads=args.heads,
        dropout=args.dropout,
    )
    capacity = budget_bytes(dataset, args.budget_gb)
    if args.devices > 1:
        if args.parallel == "split":
            from repro.core import SplitParallelBuffaloTrainer
            from repro.device import DeviceFleet

            fleet = DeviceFleet(args.devices, capacity_bytes=capacity)
            trainer = SplitParallelBuffaloTrainer(
                dataset, spec, fleet, fanouts=fanouts, seed=args.seed
            )
            device = fleet.devices[0]
        else:
            from repro.core import DataParallelBuffaloTrainer
            from repro.device import MultiGPU

            group = MultiGPU(args.devices, capacity_bytes=capacity)
            trainer = DataParallelBuffaloTrainer(
                dataset, spec, group, fanouts=fanouts, seed=args.seed
            )
            device = group.devices[0]
    else:
        device = SimulatedGPU(capacity_bytes=capacity)
        trainer = BuffaloTrainer(
            dataset,
            spec,
            device,
            fanouts=fanouts,
            seed=args.seed,
            pipeline_depth=args.pipeline_depth,
            pipeline_mode=args.pipeline_mode,
            reuse_features=args.reuse_features,
            feature_cache_bytes=args.feature_cache_bytes,
            kernel_backend=args.kernel_backend,
            kernel_threads=args.kernel_threads,
            kernel_calibration=args.calibration,
        )
    val_nodes = None
    if args.do_eval:
        val_nodes = dataset.val_nodes[:500]
    loop = TrainingLoop(
        trainer=trainer,
        dataset=dataset,
        batch_size=args.batch_size,
        val_nodes=val_nodes,
        checkpoint_path=args.checkpoint,
        seed=args.seed,
    )
    source = (
        f"{dataset.name} (store {args.data_store})"
        if args.data_store is not None
        else args.dataset
    )
    fleet_note = (
        f" across {args.devices} devices ({args.parallel}-parallel)"
        if args.devices > 1
        else ""
    )
    print(
        f"training {args.aggregator}-GraphSAGE"
        f"{' (GAT)' if args.aggregator == 'attention' else ''} on "
        f"{source} under {args.budget_gb:.0f} GB-equivalent "
        f"({device.capacity / 2**20:.0f} MiB)"
        f"{fleet_note}"
    )
    ledger_path = _resolve_ledger_path(args.ledger, "train")
    recorder = None
    recorder_sink = None
    if ledger_path is not None:
        from repro.obs import get_metrics, get_tracer
        from repro.obs.observatory.ledger import RunRecorder
        from repro.obs.trace import CallbackSink

        get_metrics().reset()
        recorder = RunRecorder()
        recorder_sink = get_tracer().add_sink(
            CallbackSink(recorder.consume)
        )
    if args.timeline is not None:
        trainer.attach_timeline()
    telemetry = getattr(trainer, "telemetry", None)
    extra_payload = (
        {"estimator_accuracy": lambda: telemetry.to_dict()}
        if telemetry is not None
        else None
    )
    try:
        with _observability(args, extra_payload):
            for result in loop.run(args.epochs):
                val = (
                    f"  val_acc={result.val_accuracy:.3f}"
                    if result.val_accuracy is not None
                    else ""
                )
                print(
                    f"epoch {result.epoch}: loss={result.mean_loss:.4f}"
                    f"  batches={result.n_batches}"
                    f"  micro-batches={result.total_micro_batches}"
                    f"  wall={result.wall_s:.2f}s{val}"
                )
    finally:
        if recorder_sink is not None:
            from repro.obs import get_tracer

            get_tracer().remove_sink(recorder_sink)
    if args.timeline is not None and trainer.timeline is not None:
        try:
            trainer.timeline.to_jsonl(args.timeline)
        except OSError as exc:
            raise SystemExit(
                f"cannot write timeline to {args.timeline}: {exc}"
            )
        print(
            f"timeline written to {args.timeline} "
            f"({len(trainer.timeline.samples)} samples)"
        )
    if recorder is not None:
        from repro.obs.observatory.ledger import append_record

        record = _train_ledger_record(args, trainer, recorder, fanouts)
        try:
            append_record(ledger_path, record)
        except OSError as exc:
            raise SystemExit(
                f"cannot write ledger to {ledger_path}: {exc}"
            )
        print(f"ledger record appended to {ledger_path}")
    if args.devices > 1:
        fleet = getattr(trainer, "fleet", None)
        if fleet is not None:
            print(
                f"fleet: halo {fleet.halo_bytes / 2**20:.2f} MiB "
                f"exchanged, all-reduce "
                f"{fleet.allreduce_bytes / 2**20:.2f} MiB, "
                f"sim {fleet.sim_time_s * 1e3:.2f} ms"
            )
    feature_cache = getattr(trainer, "feature_cache", None)
    if feature_cache is not None:
        print(
            f"feature-cache hit rate: {feature_cache.hit_rate:.1%}"
            f"  ({feature_cache.hits} hits,"
            f" {feature_cache.misses} misses)"
        )
    store = getattr(trainer, "store", None)
    if store is not None:
        print(
            f"feature store: hot-cache hit rate {store.hot_hit_rate:.1%}"
            f"  disk {store.bytes_read / 2**20:.2f} MiB"
            f"  peak resident {store.peak_resident_bytes / 2**20:.2f} MiB"
            f" (full matrix {store.nbytes / 2**20:.2f} MiB)"
        )
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.bench.experiments.common import prepare_batch
    from repro.bench.workloads import budget_bytes
    from repro.core.scheduler import BuffaloScheduler
    from repro.datasets import load
    from repro.gnn.footprint import ModelSpec

    _require_positive(args.budget_gb, "--budget-gb (memory budget)")
    fanouts = _parse_fanouts(args.fanouts)
    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    prepared = prepare_batch(
        dataset, fanouts, n_seeds=args.n_seeds, seed=args.seed
    )
    spec = ModelSpec(
        dataset.feat_dim,
        args.hidden,
        dataset.n_classes,
        len(fanouts),
        args.aggregator,
    )
    budget = budget_bytes(dataset, args.budget_gb)
    clustering = dataset.stats(clustering_sample=500)["avg_clustering"]
    scheduler = BuffaloScheduler(
        spec,
        0.9 * budget,
        cutoff=fanouts[0],
        clustering_coefficient=clustering,
    )
    with _observability(args):
        plan = scheduler.schedule(prepared.batch, prepared.blocks)
    print(
        f"{args.dataset}: {prepared.batch.n_seeds} seeds -> K={plan.k} "
        f"bucket groups (budget {budget / 2**20:.0f} MiB, "
        f"split={'yes' if plan.split_applied else 'no'})"
    )
    for i, group in enumerate(plan.groups):
        print(f"  group {i}: {group}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    return 0


def _cmd_serve(args) -> int:
    import numpy as np

    from repro.bench.workloads import standard_spec
    from repro.core.api import build_model
    from repro.datasets import load
    from repro.serve import (
        BatchPolicy,
        EmbeddingCache,
        LoadSpec,
        ServeEngine,
        ServeServer,
        generate_trace,
    )

    _require_positive(args.requests, "--requests")
    _require_positive(args.rate_hz, "--rate-hz")
    _require_positive(args.max_batch, "--max-batch")
    _require_positive(args.queue_depth, "--queue-depth")
    _require_positive(args.kernel_threads, "--kernel-threads")
    if args.max_wait_ms < 0:
        raise SystemExit(
            f"--max-wait-ms must be >= 0, got {args.max_wait_ms}"
        )
    if args.cache_mb < 0:
        raise SystemExit(f"--cache-mb must be >= 0, got {args.cache_mb}")
    fanouts = _parse_fanouts(args.fanouts)
    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    spec = standard_spec(
        dataset,
        aggregator=args.aggregator,
        hidden=args.hidden,
        n_layers=len(fanouts),
    )
    model = build_model(spec, rng=args.seed)
    trace = generate_trace(
        LoadSpec(
            n_requests=args.requests,
            rate_hz=args.rate_hz,
            zipf_exponent=args.zipf,
            seed=args.seed,
        ),
        dataset.train_nodes,
    )
    policy = BatchPolicy(
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_queue_depth=args.queue_depth,
    )
    with _observability(args):
        engine = ServeEngine(
            model,
            dataset.graph,
            dataset.features,
            fanouts,
            sampler_seed=args.seed,
            cache=EmbeddingCache(int(args.cache_mb * 2**20)),
            kernel_backend=args.kernel_backend,
            kernel_threads=args.kernel_threads,
        )
        server = ServeServer(engine, policy).start()
        pendings = [server.submit(req.node) for req in trace]
        server.stop(drain=True)
    latencies = []
    hits = 0
    rejects: dict[str, int] = {}
    for pending in pendings:
        if pending.rejected:
            reason = pending.reject_reason or "unknown"
            rejects[reason] = rejects.get(reason, 0) + 1
            continue
        response = pending.result(timeout=0.0)
        latencies.append(response.latency_s)
        hits += int(response.cache_hit)
    served = len(latencies)
    print(
        f"{args.dataset}: served {served}/{len(trace)} requests in "
        f"{server.batches} batches "
        f"(max_batch={policy.max_batch}, "
        f"max_wait={policy.max_wait_s * 1e3:.1f} ms, "
        f"queue_depth={policy.max_queue_depth})"
    )
    if served:
        arr = np.array(latencies)
        print(
            f"  latency p50 {np.quantile(arr, 0.50) * 1e3:.2f} ms  "
            f"p95 {np.quantile(arr, 0.95) * 1e3:.2f} ms  "
            f"p99 {np.quantile(arr, 0.99) * 1e3:.2f} ms  "
            f"cache hits {hits}"
        )
    for reason in sorted(rejects):
        print(f"  rejected ({reason}): {rejects[reason]}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    return 0 if served + sum(rejects.values()) == len(trace) else 1


def _cmd_store(args) -> int:
    from pathlib import Path

    from repro.store import build_store, describe_store, store_info

    if args.store_command == "build":
        _require_positive(args.shard_rows, "--shard-rows")
        _require_positive(args.scale, "--scale")
        source = Path(args.source)
        if source.exists():
            from repro.datasets.io import load_dataset

            dataset = load_dataset(source)
        else:
            if source.suffix or "/" in args.source:
                raise SystemExit(f"no such dataset file: {args.source}")
            from repro.datasets import load

            dataset = load(args.source, scale=args.scale, seed=args.seed)
        kwargs = {"overwrite": args.force}
        if args.shard_rows is not None:
            kwargs["shard_rows"] = args.shard_rows
        manifest = build_store(dataset, args.dest, **kwargs)
        total = sum(int(f["bytes"]) for f in manifest.files.values())
        print(
            f"built store {args.dest}: {manifest.n_nodes:,} nodes, "
            f"{manifest.n_edges:,} edges, {manifest.n_shards} feature "
            f"shard(s), {total / 2**20:.2f} MiB"
        )
        return 0
    # store info
    if not Path(args.path).exists():
        raise SystemExit(f"no such dataset store: {args.path}")
    info = store_info(args.path, verify=args.verify)
    if args.as_json:
        from repro.store.builder import info_json

        print(info_json(info))
    else:
        print(describe_store(info))
    return 0


def _cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.trace import TraceReadError

    if not Path(args.path).is_file():
        raise SystemExit(f"no such trace file: {args.path}")

    if args.action == "timeline":
        from repro.obs.observatory.timeline import (
            TimelineError,
            load_timeline,
            render_timeline,
        )

        try:
            samples = load_timeline(args.path)
        except (TimelineError, TraceReadError) as exc:
            raise SystemExit(
                f"{args.path} is not a timeline file: {exc}"
            )
        if not samples:
            raise SystemExit(f"{args.path} contains no timeline samples")
        print(render_timeline(samples, csv=args.csv))
        return 0

    if args.action == "critical-path":
        from repro.obs.observatory.critical_path import (
            CriticalPathError,
            build_critical_path,
            render_critical_path,
            write_folded_stacks,
        )
        from repro.obs.trace import read_trace_events

        try:
            events, skipped = read_trace_events(args.path)
            report = build_critical_path(
                events, main_thread=args.main_thread
            )
        except (TraceReadError, CriticalPathError) as exc:
            raise SystemExit(f"cannot analyze {args.path}: {exc}")
        print(render_critical_path(report))
        if skipped is not None:
            print(
                f"note: skipped torn trailing line {skipped} "
                f"(partial write)"
            )
        if args.folded:
            try:
                n = write_folded_stacks(report, args.folded)
            except OSError as exc:
                raise SystemExit(
                    f"cannot write folded stacks to {args.folded}: {exc}"
                )
            print(f"folded stacks ({n} lines) written to {args.folded}")
        return 0

    from repro.obs.summarize import render_summary, summarize_file

    try:
        summary = summarize_file(args.path)
    except (json.JSONDecodeError, TraceReadError) as exc:
        raise SystemExit(f"{args.path} is not a JSONL trace: {exc}")
    print(render_summary(summary, title=f"trace summary: {args.path}"))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import all_rules, rule_names
    from repro.analysis.baseline import write_baseline
    from repro.analysis.framework import AnalysisError
    from repro.analysis.reporters import (
        render_json,
        render_sarif,
        render_text,
    )
    from repro.analysis.rules.concurrency import CONCURRENCY_RULES
    from repro.analysis.runner import run_lint

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
            print(f"    scopes: {', '.join(rule.default_scopes)}")
            print(f"    invariant: {rule.invariant}")
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rules) - set(rule_names()))
        if unknown:
            raise SystemExit(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"available: {', '.join(rule_names())}"
            )
    if args.concurrency:
        concurrency = list(CONCURRENCY_RULES) + ["lock-discipline"]
        if rules is None:
            rules = concurrency
        else:
            rules = [r for r in rules if r in concurrency] or concurrency
    try:
        result = run_lint(
            args.root,
            paths=args.paths or None,
            rules=rules,
            baseline_path=args.baseline,
            use_baseline=not (args.no_baseline or args.write_baseline),
            use_cache=not args.no_cache,
        )
    except AnalysisError as exc:
        raise SystemExit(f"error: {exc}")
    if args.write_baseline:
        from pathlib import Path

        baseline_path = Path(args.root) / (
            args.baseline or result.config.baseline
        )
        try:
            count = write_baseline(
                baseline_path, result.findings, result.fingerprints
            )
        except AnalysisError as exc:
            raise SystemExit(f"error: {exc}")
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0
    if args.sarif_path:
        from pathlib import Path

        sarif_path = Path(args.sarif_path)
        sarif_path.write_text(render_sarif(result), encoding="utf-8")
        print(f"SARIF report written to {sarif_path}")
    if args.output_format == "json":
        print(render_json(result))
    elif args.output_format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def _run_one_experiment(name: str, *, ledger: str | None = None) -> bool:
    module = importlib.import_module(f"repro.bench.experiments.{name}")
    output = module.run()
    print(output.table)
    print()
    for check, ok in output.shape_checks.items():
        print(f"  [{'PASS' if ok else 'FAIL'}] {check}")
    print()
    if ledger is not None:
        from repro.bench.harness import ledger_record_from_output
        from repro.obs.observatory.ledger import append_record

        ledger_path = _resolve_ledger_path(ledger, output.name)
        record = ledger_record_from_output(output)
        try:
            append_record(ledger_path, record)
        except OSError as exc:
            raise SystemExit(
                f"cannot write ledger to {ledger_path}: {exc}"
            )
        print(f"ledger record appended to {ledger_path}")
    return all(output.shape_checks.values())


def _cmd_experiment(args) -> int:
    if args.list_all or args.name is None:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all (runs every experiment)")
        return 0
    if args.name == "all":
        failed = [
            name for name in EXPERIMENTS if not _run_one_experiment(name)
        ]
        if failed:
            print(f"experiments with failed shape checks: {failed}")
            return 1
        print(f"all {len(EXPERIMENTS)} experiments passed")
        return 0
    if args.name not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {args.name!r}; "
            f"see `repro experiment --list`"
        )
    return 0 if _run_one_experiment(args.name, ledger=args.ledger) else 1


def _cmd_bench(args) -> int:
    if args.bench_command == "experiment":
        if args.name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {args.name!r}; "
                f"see `repro experiment --list`"
            )
        return 0 if _run_one_experiment(args.name, ledger=args.ledger) else 1
    from repro.bench.kernels import (
        ledger_record_from_kernel_result,
        run_kernel_bench,
        run_threaded_comparison,
        run_tuned_comparison,
        write_bench_json,
    )
    from repro.obs.observatory.ledger import (
        LedgerError,
        append_record,
        check_floors,
        compare_records,
        render_comparison,
        resolve_record_spec,
    )

    _require_positive(args.rows, "--rows")
    _require_positive(args.degree, "--degree")
    _require_positive(args.feat, "--feat")
    _require_positive(args.repeats, "--repeats")
    if args.threads < 0:
        raise SystemExit("error: --threads must be >= 0")
    result = run_kernel_bench(
        n_rows=args.rows,
        degree=args.degree,
        feat_dim=args.feat,
        repeats=args.repeats,
        seed=args.seed,
    )
    calibration = _bench_calibration(args)
    if calibration is not None:
        run_tuned_comparison(result, calibration, repeats=args.repeats)
    if args.threads:
        run_threaded_comparison(
            result, n_threads=args.threads, repeats=args.repeats
        )
    path = write_bench_json(result, args.out)
    for op, per_op in result["ops"].items():
        print(
            f"{op}: reference {per_op['reference']['wall_s'] * 1e3:.2f} ms"
            f"  fused {per_op['fused']['wall_s'] * 1e3:.2f} ms"
            f"  speedup {per_op['speedup']:.2f}x"
            f"  scratch ratio {per_op['scratch_ratio']:.2f}"
        )
    for bucket_name, bucket in result["buckets"].items():
        for op, per_op in bucket["ops"].items():
            print(
                f"{bucket_name}.{op}: speedup {per_op['speedup']:.2f}x"
                f"  scratch ratio {per_op['scratch_ratio']:.2f}"
            )
    if "tuned" in result:
        for row, cells in result["tuned"]["rows"].items():
            print(
                f"tuned.{row}: "
                f"{cells['tuned_vs_default_speedup']:.2f}x vs default "
                f"(default {cells['default_wall_s'] * 1e3:.2f} ms, "
                f"tuned {cells['tuned_wall_s'] * 1e3:.2f} ms)"
            )
    if "threaded" in result:
        t = result["threaded"]
        print(
            f"threaded@{t['n_threads']}: bitwise "
            f"{'OK' if t['bitwise_equal'] else 'MISMATCH'}"
            f"  measured {t['measured_speedup']:.2f}x"
            f"  modeled {t['modeled_speedup']:.2f}x"
            f"  (parallel fraction {t['parallel_fraction']:.2f})"
        )
    print(f"results written to {path}")
    # The kernels gate runs on the ledger path: the result becomes a
    # LedgerRecord whose floors reproduce the old check_regression
    # behavior, and --baseline adds a cross-run comparison.
    record = ledger_record_from_kernel_result(result)
    ledger_path = _resolve_ledger_path(args.ledger, "kernels")
    if ledger_path is not None:
        try:
            append_record(ledger_path, record)
        except OSError as exc:
            raise SystemExit(
                f"cannot write ledger to {ledger_path}: {exc}"
            )
        print(f"ledger record appended to {ledger_path}")
    if args.check:
        failures = check_floors(record)
        if args.baseline is not None:
            try:
                baseline = resolve_record_spec(args.baseline)
            except LedgerError as exc:
                raise SystemExit(f"error: {exc}")
            comparison = compare_records(baseline, record)
            print(render_comparison(comparison))
            failures.extend(
                f"vs baseline: {d.name} "
                f"{_fmt_delta(d)}"
                for d in comparison.regressions
            )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("perf gate passed (all ledger floors met)")
    return 0


def _bench_calibration(args):
    """Resolve the bench's calibration: tune-and-save, load, or None."""
    if not args.tune and args.calibration is None:
        return None
    from pathlib import Path

    from repro.kernels import (
        CalibrationError,
        default_calibration_path,
        load_calibration,
        save_calibration,
        tune_calibration,
    )

    path = (
        Path(args.calibration)
        if args.calibration is not None
        else default_calibration_path()
    )
    if args.tune:
        calibration = tune_calibration(repeats=max(args.repeats, 2))
        save_calibration(calibration, path)
        print(f"calibration written to {path}")
        return calibration
    try:
        return load_calibration(path)
    except CalibrationError as exc:
        raise SystemExit(f"error: cannot load --calibration: {exc}")


def _fmt_delta(delta) -> str:
    rel = delta.rel_delta
    rel_text = "" if rel is None else f" ({100.0 * rel:+.1f}%)"
    return f"{delta.base:.6g} -> {delta.new:.6g}{rel_text}"


def _cmd_ledger(args) -> int:
    from repro.obs.observatory.ledger import (
        LedgerError,
        check_floors,
        compare_records,
        render_comparison,
        render_record,
        resolve_record_spec,
    )

    try:
        if args.ledger_command == "show":
            print(render_record(resolve_record_spec(args.record)))
            return 0
        if args.ledger_command == "compare":
            base = resolve_record_spec(args.base)
            new = resolve_record_spec(args.new)
            comparison = compare_records(
                base, new, _thresholds_from_args(args)
            )
            print(render_comparison(comparison))
            return 0 if comparison.ok else 1
        # check
        record = resolve_record_spec(args.record)
        failures = check_floors(record)
        if args.baseline is not None:
            baseline = resolve_record_spec(args.baseline)
            comparison = compare_records(
                baseline, record, _thresholds_from_args(args)
            )
            print(render_comparison(comparison))
            failures.extend(
                f"vs baseline: {d.name} {_fmt_delta(d)}"
                for d in comparison.regressions
            )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("ledger check passed")
        return 0
    except LedgerError as exc:
        raise SystemExit(f"error: {exc}")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "train": _cmd_train,
        "schedule": _cmd_schedule,
        "serve": _cmd_serve,
        "store": _cmd_store,
        "trace": _cmd_trace,
        "experiment": _cmd_experiment,
        "bench": _cmd_bench,
        "ledger": _cmd_ledger,
        "lint": _cmd_lint,
    }
    from repro.errors import DatasetError

    try:
        return handlers[args.command](args)
    except DatasetError as exc:
        # Bad inputs (unknown dataset, corrupt file, torn store) are
        # user errors: one line, no traceback.
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
