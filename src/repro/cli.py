"""Command-line interface.

Subcommands::

    python -m repro datasets                    # Table II-style stats
    python -m repro train --dataset ogbn_arxiv  # Buffalo training
    python -m repro train --trace t.jsonl --metrics m.json  # + telemetry
    python -m repro train --data-store d.store  # out-of-core training
    python -m repro schedule --dataset reddit   # inspect a plan
    python -m repro store build cora.npz cora.store  # convert to a store
    python -m repro store info cora.store       # inspect a store
    python -m repro trace summarize t.jsonl     # per-phase breakdown
    python -m repro experiment fig10            # regenerate a figure
    python -m repro experiment --list
    python -m repro bench kernels --check       # kernel perf gate
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import sys
from typing import Sequence

EXPERIMENTS = (
    "fig01",
    "tab02",
    "fig02",
    "fig04",
    "fig05",
    "fig06",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "tab03",
    "tab04",
    "sec_g",
    "ablation_grouping",
    "ablation_estimator",
    "ablation_feature_cache",
    "pipeline_overlap",
    "store_io",
    "kernels",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Buffalo reproduction: memory-efficient bucketized "
        "GNN training (HPCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="show dataset statistics")
    datasets.add_argument("--scale", type=float, default=0.25)
    datasets.add_argument("--seed", type=int, default=0)

    train = sub.add_parser("train", help="train a GNN with Buffalo")
    train.add_argument("--dataset", default="ogbn_arxiv")
    train.add_argument(
        "--data-store",
        default=None,
        metavar="PATH",
        help="train from an on-disk dataset store (built with "
        "`repro store build`) instead of generating --dataset in memory",
    )
    train.add_argument("--scale", type=float, default=0.1)
    train.add_argument(
        "--aggregator",
        default="mean",
        choices=["mean", "sum", "max", "pool", "lstm", "attention", "gcn"],
    )
    train.add_argument("--hidden", type=int, default=64)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--heads", type=int, default=1)
    train.add_argument("--dropout", type=float, default=0.0)
    train.add_argument("--budget-gb", type=float, default=24.0)
    train.add_argument("--epochs", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=256)
    train.add_argument(
        "--fanouts", default="10,25", help="comma list, output layer first"
    )
    train.add_argument("--checkpoint", default=None)
    train.add_argument("--eval", action="store_true", dest="do_eval")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--pipeline-depth",
        type=int,
        default=1,
        help="prefetch depth of the staged execution engine "
        "(1 = sequential Algorithm 2; gradients are identical either way)",
    )
    train.add_argument(
        "--pipeline-mode",
        default="auto",
        choices=["auto", "sync", "threaded"],
        help="auto: threads when depth > 1; sync: deterministic staged "
        "schedule without threads",
    )
    train.add_argument(
        "--reuse-features",
        action="store_true",
        help="pin feature rows shared by consecutive bucket groups in a "
        "device cache (cross-group reuse)",
    )
    train.add_argument(
        "--feature-cache-bytes",
        type=int,
        default=None,
        help="byte budget of the device feature cache used by "
        "--reuse-features (default: 10%% of device capacity)",
    )
    train.add_argument(
        "--kernel-backend",
        default="reference",
        choices=["reference", "fused"],
        help="bucketed-aggregation kernels: 'reference' keeps the dense "
        "(n, degree, feat) gather semantics bit-for-bit; 'fused' reads "
        "the CSR block directly (see docs/kernels.md)",
    )
    train.add_argument(
        "--hot-cache-mb",
        type=float,
        default=None,
        help="hot-node cache budget (MiB) of a --data-store feature "
        "store (default 16 MiB)",
    )
    train.add_argument(
        "--host-budget-mb",
        type=float,
        default=None,
        help="soft ceiling (MiB) on host-resident feature bytes of a "
        "--data-store run; the hot cache shrinks to fit",
    )
    _add_obs_flags(train)

    schedule = sub.add_parser(
        "schedule", help="show Buffalo's plan for one batch"
    )
    schedule.add_argument("--dataset", default="ogbn_arxiv")
    schedule.add_argument("--scale", type=float, default=0.1)
    schedule.add_argument("--budget-gb", type=float, default=24.0)
    schedule.add_argument("--aggregator", default="lstm")
    schedule.add_argument("--hidden", type=int, default=64)
    schedule.add_argument("--n-seeds", type=int, default=400)
    schedule.add_argument("--fanouts", default="10,25")
    schedule.add_argument("--seed", type=int, default=0)
    _add_obs_flags(schedule)

    store = sub.add_parser(
        "store", help="build or inspect an on-disk dataset store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    build = store_sub.add_parser(
        "build",
        help="convert a saved .npz dataset (or a catalog name) into "
        "the chunked store layout",
    )
    build.add_argument(
        "source", help="path to a saved .npz dataset, or a dataset name"
    )
    build.add_argument("dest", help="store directory to create")
    build.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        help="feature rows per shard file (default 4096)",
    )
    build.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale when source is a catalog name",
    )
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--force",
        action="store_true",
        help="replace an existing store at dest",
    )
    info = store_sub.add_parser("info", help="summarize a store")
    info.add_argument("path", help="store directory")
    info.add_argument(
        "--verify",
        action="store_true",
        help="check every file's size and CRC32 against the manifest",
    )
    info.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON",
    )

    trace = sub.add_parser(
        "trace", help="inspect a JSONL trace produced by --trace"
    )
    trace.add_argument(
        "action", choices=["summarize"], help="what to do with the trace"
    )
    trace.add_argument("path", help="JSONL trace file")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", nargs="?", default=None)
    experiment.add_argument("--list", action="store_true", dest="list_all")

    bench = sub.add_parser(
        "bench", help="machine-readable micro-benchmarks (BENCH_*.json)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_kernels = bench_sub.add_parser(
        "kernels",
        help="fused vs reference kernel backends on the cut-off bucket",
    )
    bench_kernels.add_argument("--rows", type=int, default=4096)
    bench_kernels.add_argument("--degree", type=int, default=24)
    bench_kernels.add_argument("--feat", type=int, default=64)
    bench_kernels.add_argument("--repeats", type=int, default=3)
    bench_kernels.add_argument("--seed", type=int, default=0)
    bench_kernels.add_argument(
        "--out",
        default="BENCH_kernels.json",
        metavar="PATH",
        help="where to write the JSON result (default: BENCH_kernels.json)",
    )
    bench_kernels.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when fused is >10%% slower than reference on "
        "sum/mean (best-of---repeats; the CI perf-smoke gate)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the project-aware linter (see docs/analysis.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to check (default: configured paths)",
    )
    lint.add_argument(
        "--root",
        default=".",
        help="repository root holding pyproject.toml (default: cwd)",
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        dest="output_format",
        help="report format",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="A,B",
        help="comma list of rule names to run (default: all)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file of grandfathered findings "
        "(default: lint-baseline.json under --root)",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, including grandfathered ones",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="re-analyze every file, ignoring the result cache",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="describe the registered rules and exit",
    )
    lint.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="include suppression/stale-baseline details in text output",
    )

    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write span events as JSONL to PATH",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot as JSON to PATH",
    )


@contextlib.contextmanager
def _observability(args, extra_payload: dict | None = None):
    """Attach trace/metrics outputs for one command invocation.

    The metrics registry is reset on entry (when any output is
    requested) so the written snapshot covers exactly this run; the
    sink is detached and the files are finalized on exit, even when the
    command fails.  ``extra_payload`` entries holding callables are
    evaluated at exit (e.g. estimator-accuracy telemetry that only
    exists once training ran).
    """
    import json

    from repro.obs import JsonlFileSink, get_metrics, get_tracer

    tracer = get_tracer()
    sink = None
    if args.trace or args.metrics:
        get_metrics().reset()
    if args.trace:
        try:
            sink = tracer.add_sink(JsonlFileSink(args.trace))
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {args.trace}: {exc}")
    try:
        yield
    finally:
        if sink is not None:
            tracer.remove_sink(sink)
            sink.close()
        if args.metrics:
            payload = {"metrics": get_metrics().snapshot()}
            for key, value in (extra_payload or {}).items():
                payload[key] = value() if callable(value) else value
            try:
                with open(args.metrics, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:
                raise SystemExit(
                    f"cannot write metrics to {args.metrics}: {exc}"
                )


def _require_positive(value, flag: str) -> None:
    """Exit with a one-line message when a budget flag is non-positive."""
    if value is not None and value <= 0:
        raise SystemExit(f"{flag} must be positive, got {value}")


def _parse_fanouts(text: str) -> list[int]:
    try:
        fanouts = [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise SystemExit(f"invalid --fanouts {text!r}; expected e.g. 10,25")
    if not fanouts:
        raise SystemExit("--fanouts must contain at least one value")
    return fanouts


def _cmd_datasets(args) -> int:
    from repro.bench.reporting import format_table
    from repro.datasets import DATASET_NAMES, load

    rows = []
    for name in DATASET_NAMES:
        dataset = load(name, scale=args.scale, seed=args.seed)
        stats = dataset.stats(clustering_sample=500)
        rows.append(
            [
                name,
                stats["n_nodes"],
                stats["n_edges"],
                stats["avg_degree"],
                stats["avg_clustering"],
                "yes" if stats["power_law"] else "no",
            ]
        )
    print(
        format_table(
            ["dataset", "nodes", "edges", "avg deg", "avg coef", "power law"],
            rows,
            title=f"generated datasets at scale={args.scale}",
        )
    )
    return 0


def _cmd_train(args) -> int:
    from repro.bench.workloads import budget_bytes
    from repro.core import BuffaloTrainer
    from repro.datasets import load
    from repro.device import SimulatedGPU
    from repro.gnn.footprint import ModelSpec
    from repro.training import TrainingLoop

    fanouts = _parse_fanouts(args.fanouts)
    if len(fanouts) != args.layers:
        raise SystemExit(
            f"--fanouts needs {args.layers} values for --layers {args.layers}"
        )
    _require_positive(args.budget_gb, "--budget-gb (memory budget)")
    _require_positive(args.feature_cache_bytes, "--feature-cache-bytes")
    _require_positive(args.hot_cache_mb, "--hot-cache-mb")
    _require_positive(args.host_budget_mb, "--host-budget-mb")
    if args.data_store is not None:
        from pathlib import Path

        from repro.datasets import open_dataset
        from repro.store import is_store_path

        if not Path(args.data_store).exists():
            raise SystemExit(f"no such dataset store: {args.data_store}")
        if not is_store_path(args.data_store):
            raise SystemExit(
                f"{args.data_store} is not a dataset store "
                f"(build one with `repro store build`)"
            )
        dataset = open_dataset(
            args.data_store,
            hot_cache_bytes=(
                int(args.hot_cache_mb * 2**20)
                if args.hot_cache_mb is not None
                else None
            ),
            host_budget_bytes=(
                int(args.host_budget_mb * 2**20)
                if args.host_budget_mb is not None
                else None
            ),
        )
    else:
        dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    spec = ModelSpec(
        dataset.feat_dim,
        args.hidden,
        dataset.n_classes,
        args.layers,
        args.aggregator,
        heads=args.heads,
        dropout=args.dropout,
    )
    device = SimulatedGPU(
        capacity_bytes=budget_bytes(dataset, args.budget_gb)
    )
    trainer = BuffaloTrainer(
        dataset,
        spec,
        device,
        fanouts=fanouts,
        seed=args.seed,
        pipeline_depth=args.pipeline_depth,
        pipeline_mode=args.pipeline_mode,
        reuse_features=args.reuse_features,
        feature_cache_bytes=args.feature_cache_bytes,
        kernel_backend=args.kernel_backend,
    )
    val_nodes = None
    if args.do_eval:
        val_nodes = dataset.val_nodes[:500]
    loop = TrainingLoop(
        trainer=trainer,
        dataset=dataset,
        batch_size=args.batch_size,
        val_nodes=val_nodes,
        checkpoint_path=args.checkpoint,
        seed=args.seed,
    )
    source = (
        f"{dataset.name} (store {args.data_store})"
        if args.data_store is not None
        else args.dataset
    )
    print(
        f"training {args.aggregator}-GraphSAGE"
        f"{' (GAT)' if args.aggregator == 'attention' else ''} on "
        f"{source} under {args.budget_gb:.0f} GB-equivalent "
        f"({device.capacity / 2**20:.0f} MiB)"
    )
    with _observability(
        args,
        {"estimator_accuracy": lambda: trainer.telemetry.to_dict()},
    ):
        for result in loop.run(args.epochs):
            val = (
                f"  val_acc={result.val_accuracy:.3f}"
                if result.val_accuracy is not None
                else ""
            )
            print(
                f"epoch {result.epoch}: loss={result.mean_loss:.4f}"
                f"  batches={result.n_batches}"
                f"  micro-batches={result.total_micro_batches}"
                f"  wall={result.wall_s:.2f}s{val}"
            )
    if trainer.feature_cache is not None:
        print(
            f"feature-cache hit rate: {trainer.feature_cache.hit_rate:.1%}"
            f"  ({trainer.feature_cache.hits} hits,"
            f" {trainer.feature_cache.misses} misses)"
        )
    if trainer.store is not None:
        store = trainer.store
        print(
            f"feature store: hot-cache hit rate {store.hot_hit_rate:.1%}"
            f"  disk {store.bytes_read / 2**20:.2f} MiB"
            f"  peak resident {store.peak_resident_bytes / 2**20:.2f} MiB"
            f" (full matrix {store.nbytes / 2**20:.2f} MiB)"
        )
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.bench.experiments.common import prepare_batch
    from repro.bench.workloads import budget_bytes
    from repro.core.scheduler import BuffaloScheduler
    from repro.datasets import load
    from repro.gnn.footprint import ModelSpec

    _require_positive(args.budget_gb, "--budget-gb (memory budget)")
    fanouts = _parse_fanouts(args.fanouts)
    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    prepared = prepare_batch(
        dataset, fanouts, n_seeds=args.n_seeds, seed=args.seed
    )
    spec = ModelSpec(
        dataset.feat_dim,
        args.hidden,
        dataset.n_classes,
        len(fanouts),
        args.aggregator,
    )
    budget = budget_bytes(dataset, args.budget_gb)
    clustering = dataset.stats(clustering_sample=500)["avg_clustering"]
    scheduler = BuffaloScheduler(
        spec,
        0.9 * budget,
        cutoff=fanouts[0],
        clustering_coefficient=clustering,
    )
    with _observability(args):
        plan = scheduler.schedule(prepared.batch, prepared.blocks)
    print(
        f"{args.dataset}: {prepared.batch.n_seeds} seeds -> K={plan.k} "
        f"bucket groups (budget {budget / 2**20:.0f} MiB, "
        f"split={'yes' if plan.split_applied else 'no'})"
    )
    for i, group in enumerate(plan.groups):
        print(f"  group {i}: {group}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    return 0


def _cmd_store(args) -> int:
    from pathlib import Path

    from repro.store import build_store, describe_store, store_info

    if args.store_command == "build":
        _require_positive(args.shard_rows, "--shard-rows")
        _require_positive(args.scale, "--scale")
        source = Path(args.source)
        if source.exists():
            from repro.datasets.io import load_dataset

            dataset = load_dataset(source)
        else:
            if source.suffix or "/" in args.source:
                raise SystemExit(f"no such dataset file: {args.source}")
            from repro.datasets import load

            dataset = load(args.source, scale=args.scale, seed=args.seed)
        kwargs = {"overwrite": args.force}
        if args.shard_rows is not None:
            kwargs["shard_rows"] = args.shard_rows
        manifest = build_store(dataset, args.dest, **kwargs)
        total = sum(int(f["bytes"]) for f in manifest.files.values())
        print(
            f"built store {args.dest}: {manifest.n_nodes:,} nodes, "
            f"{manifest.n_edges:,} edges, {manifest.n_shards} feature "
            f"shard(s), {total / 2**20:.2f} MiB"
        )
        return 0
    # store info
    if not Path(args.path).exists():
        raise SystemExit(f"no such dataset store: {args.path}")
    info = store_info(args.path, verify=args.verify)
    if args.as_json:
        from repro.store.builder import info_json

        print(info_json(info))
    else:
        print(describe_store(info))
    return 0


def _cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.summarize import render_summary, summarize_file

    if not Path(args.path).is_file():
        raise SystemExit(f"no such trace file: {args.path}")
    try:
        summary = summarize_file(args.path)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{args.path} is not a JSONL trace: {exc}")
    print(render_summary(summary, title=f"trace summary: {args.path}"))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import all_rules, rule_names
    from repro.analysis.baseline import write_baseline
    from repro.analysis.framework import AnalysisError
    from repro.analysis.reporters import render_json, render_text
    from repro.analysis.runner import run_lint

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
            print(f"    scopes: {', '.join(rule.default_scopes)}")
            print(f"    invariant: {rule.invariant}")
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rules) - set(rule_names()))
        if unknown:
            raise SystemExit(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"available: {', '.join(rule_names())}"
            )
    try:
        result = run_lint(
            args.root,
            paths=args.paths or None,
            rules=rules,
            baseline_path=args.baseline,
            use_baseline=not (args.no_baseline or args.write_baseline),
            use_cache=not args.no_cache,
        )
    except AnalysisError as exc:
        raise SystemExit(f"error: {exc}")
    if args.write_baseline:
        from pathlib import Path

        baseline_path = Path(args.root) / (
            args.baseline or result.config.baseline
        )
        try:
            count = write_baseline(baseline_path, result.findings)
        except AnalysisError as exc:
            raise SystemExit(f"error: {exc}")
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0
    if args.output_format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def _run_one_experiment(name: str) -> bool:
    module = importlib.import_module(f"repro.bench.experiments.{name}")
    output = module.run()
    print(output.table)
    print()
    for check, ok in output.shape_checks.items():
        print(f"  [{'PASS' if ok else 'FAIL'}] {check}")
    print()
    return all(output.shape_checks.values())


def _cmd_experiment(args) -> int:
    if args.list_all or args.name is None:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all (runs every experiment)")
        return 0
    if args.name == "all":
        failed = [
            name for name in EXPERIMENTS if not _run_one_experiment(name)
        ]
        if failed:
            print(f"experiments with failed shape checks: {failed}")
            return 1
        print(f"all {len(EXPERIMENTS)} experiments passed")
        return 0
    if args.name not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {args.name!r}; "
            f"see `repro experiment --list`"
        )
    return 0 if _run_one_experiment(args.name) else 1


def _cmd_bench(args) -> int:
    from repro.bench.kernels import (
        check_regression,
        run_kernel_bench,
        write_bench_json,
    )

    _require_positive(args.rows, "--rows")
    _require_positive(args.degree, "--degree")
    _require_positive(args.feat, "--feat")
    _require_positive(args.repeats, "--repeats")
    result = run_kernel_bench(
        n_rows=args.rows,
        degree=args.degree,
        feat_dim=args.feat,
        repeats=args.repeats,
        seed=args.seed,
    )
    path = write_bench_json(result, args.out)
    for op, per_op in result["ops"].items():
        print(
            f"{op}: reference {per_op['reference']['wall_s'] * 1e3:.2f} ms"
            f"  fused {per_op['fused']['wall_s'] * 1e3:.2f} ms"
            f"  speedup {per_op['speedup']:.2f}x"
            f"  scratch ratio {per_op['scratch_ratio']:.2f}"
        )
    print(f"results written to {path}")
    if args.check:
        failures = check_regression(result)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("perf gate passed (fused within floor on sum/mean)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "train": _cmd_train,
        "schedule": _cmd_schedule,
        "store": _cmd_store,
        "trace": _cmd_trace,
        "experiment": _cmd_experiment,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
    }
    from repro.errors import DatasetError

    try:
        return handlers[args.command](args)
    except DatasetError as exc:
        # Bad inputs (unknown dataset, corrupt file, torn store) are
        # user errors: one line, no traceback.
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
