"""Command-line interface.

Subcommands::

    python -m repro datasets                    # Table II-style stats
    python -m repro train --dataset ogbn_arxiv  # Buffalo training
    python -m repro train --trace t.jsonl --metrics m.json  # + telemetry
    python -m repro schedule --dataset reddit   # inspect a plan
    python -m repro trace summarize t.jsonl     # per-phase breakdown
    python -m repro experiment fig10            # regenerate a figure
    python -m repro experiment --list
"""

from __future__ import annotations

import argparse
import contextlib
import importlib
import sys
from typing import Sequence

EXPERIMENTS = (
    "fig01",
    "tab02",
    "fig02",
    "fig04",
    "fig05",
    "fig06",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "tab03",
    "tab04",
    "sec_g",
    "ablation_grouping",
    "ablation_estimator",
    "ablation_feature_cache",
    "pipeline_overlap",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Buffalo reproduction: memory-efficient bucketized "
        "GNN training (HPCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="show dataset statistics")
    datasets.add_argument("--scale", type=float, default=0.25)
    datasets.add_argument("--seed", type=int, default=0)

    train = sub.add_parser("train", help="train a GNN with Buffalo")
    train.add_argument("--dataset", default="ogbn_arxiv")
    train.add_argument("--scale", type=float, default=0.1)
    train.add_argument(
        "--aggregator",
        default="mean",
        choices=["mean", "sum", "max", "pool", "lstm", "attention", "gcn"],
    )
    train.add_argument("--hidden", type=int, default=64)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--heads", type=int, default=1)
    train.add_argument("--dropout", type=float, default=0.0)
    train.add_argument("--budget-gb", type=float, default=24.0)
    train.add_argument("--epochs", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=256)
    train.add_argument(
        "--fanouts", default="10,25", help="comma list, output layer first"
    )
    train.add_argument("--checkpoint", default=None)
    train.add_argument("--eval", action="store_true", dest="do_eval")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--pipeline-depth",
        type=int,
        default=1,
        help="prefetch depth of the staged execution engine "
        "(1 = sequential Algorithm 2; gradients are identical either way)",
    )
    train.add_argument(
        "--pipeline-mode",
        default="auto",
        choices=["auto", "sync", "threaded"],
        help="auto: threads when depth > 1; sync: deterministic staged "
        "schedule without threads",
    )
    train.add_argument(
        "--reuse-features",
        action="store_true",
        help="pin feature rows shared by consecutive bucket groups in a "
        "device cache (cross-group reuse)",
    )
    _add_obs_flags(train)

    schedule = sub.add_parser(
        "schedule", help="show Buffalo's plan for one batch"
    )
    schedule.add_argument("--dataset", default="ogbn_arxiv")
    schedule.add_argument("--scale", type=float, default=0.1)
    schedule.add_argument("--budget-gb", type=float, default=24.0)
    schedule.add_argument("--aggregator", default="lstm")
    schedule.add_argument("--hidden", type=int, default=64)
    schedule.add_argument("--n-seeds", type=int, default=400)
    schedule.add_argument("--fanouts", default="10,25")
    schedule.add_argument("--seed", type=int, default=0)
    _add_obs_flags(schedule)

    trace = sub.add_parser(
        "trace", help="inspect a JSONL trace produced by --trace"
    )
    trace.add_argument(
        "action", choices=["summarize"], help="what to do with the trace"
    )
    trace.add_argument("path", help="JSONL trace file")

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument("name", nargs="?", default=None)
    experiment.add_argument("--list", action="store_true", dest="list_all")

    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write span events as JSONL to PATH",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot as JSON to PATH",
    )


@contextlib.contextmanager
def _observability(args, extra_payload: dict | None = None):
    """Attach trace/metrics outputs for one command invocation.

    The metrics registry is reset on entry (when any output is
    requested) so the written snapshot covers exactly this run; the
    sink is detached and the files are finalized on exit, even when the
    command fails.  ``extra_payload`` entries holding callables are
    evaluated at exit (e.g. estimator-accuracy telemetry that only
    exists once training ran).
    """
    import json

    from repro.obs import JsonlFileSink, get_metrics, get_tracer

    tracer = get_tracer()
    sink = None
    if args.trace or args.metrics:
        get_metrics().reset()
    if args.trace:
        try:
            sink = tracer.add_sink(JsonlFileSink(args.trace))
        except OSError as exc:
            raise SystemExit(f"cannot write trace to {args.trace}: {exc}")
    try:
        yield
    finally:
        if sink is not None:
            tracer.remove_sink(sink)
            sink.close()
        if args.metrics:
            payload = {"metrics": get_metrics().snapshot()}
            for key, value in (extra_payload or {}).items():
                payload[key] = value() if callable(value) else value
            try:
                with open(args.metrics, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:
                raise SystemExit(
                    f"cannot write metrics to {args.metrics}: {exc}"
                )


def _parse_fanouts(text: str) -> list[int]:
    try:
        fanouts = [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise SystemExit(f"invalid --fanouts {text!r}; expected e.g. 10,25")
    if not fanouts:
        raise SystemExit("--fanouts must contain at least one value")
    return fanouts


def _cmd_datasets(args) -> int:
    from repro.bench.reporting import format_table
    from repro.datasets import DATASET_NAMES, load

    rows = []
    for name in DATASET_NAMES:
        dataset = load(name, scale=args.scale, seed=args.seed)
        stats = dataset.stats(clustering_sample=500)
        rows.append(
            [
                name,
                stats["n_nodes"],
                stats["n_edges"],
                stats["avg_degree"],
                stats["avg_clustering"],
                "yes" if stats["power_law"] else "no",
            ]
        )
    print(
        format_table(
            ["dataset", "nodes", "edges", "avg deg", "avg coef", "power law"],
            rows,
            title=f"generated datasets at scale={args.scale}",
        )
    )
    return 0


def _cmd_train(args) -> int:
    from repro.bench.workloads import budget_bytes
    from repro.core import BuffaloTrainer
    from repro.datasets import load
    from repro.device import SimulatedGPU
    from repro.gnn.footprint import ModelSpec
    from repro.training import TrainingLoop

    fanouts = _parse_fanouts(args.fanouts)
    if len(fanouts) != args.layers:
        raise SystemExit(
            f"--fanouts needs {args.layers} values for --layers {args.layers}"
        )
    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    spec = ModelSpec(
        dataset.feat_dim,
        args.hidden,
        dataset.n_classes,
        args.layers,
        args.aggregator,
        heads=args.heads,
        dropout=args.dropout,
    )
    device = SimulatedGPU(
        capacity_bytes=budget_bytes(dataset, args.budget_gb)
    )
    trainer = BuffaloTrainer(
        dataset,
        spec,
        device,
        fanouts=fanouts,
        seed=args.seed,
        pipeline_depth=args.pipeline_depth,
        pipeline_mode=args.pipeline_mode,
        reuse_features=args.reuse_features,
    )
    val_nodes = None
    if args.do_eval:
        val_nodes = dataset.val_nodes[:500]
    loop = TrainingLoop(
        trainer=trainer,
        dataset=dataset,
        batch_size=args.batch_size,
        val_nodes=val_nodes,
        checkpoint_path=args.checkpoint,
        seed=args.seed,
    )
    print(
        f"training {args.aggregator}-GraphSAGE"
        f"{' (GAT)' if args.aggregator == 'attention' else ''} on "
        f"{args.dataset} under {args.budget_gb:.0f} GB-equivalent "
        f"({device.capacity / 2**20:.0f} MiB)"
    )
    with _observability(
        args,
        {"estimator_accuracy": lambda: trainer.telemetry.to_dict()},
    ):
        for result in loop.run(args.epochs):
            val = (
                f"  val_acc={result.val_accuracy:.3f}"
                if result.val_accuracy is not None
                else ""
            )
            print(
                f"epoch {result.epoch}: loss={result.mean_loss:.4f}"
                f"  batches={result.n_batches}"
                f"  micro-batches={result.total_micro_batches}"
                f"  wall={result.wall_s:.2f}s{val}"
            )
    if trainer.feature_cache is not None:
        print(
            f"feature-cache hit rate: {trainer.feature_cache.hit_rate:.1%}"
            f"  ({trainer.feature_cache.hits} hits,"
            f" {trainer.feature_cache.misses} misses)"
        )
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.bench.experiments.common import prepare_batch
    from repro.bench.workloads import budget_bytes
    from repro.core.scheduler import BuffaloScheduler
    from repro.datasets import load
    from repro.gnn.footprint import ModelSpec

    fanouts = _parse_fanouts(args.fanouts)
    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    prepared = prepare_batch(
        dataset, fanouts, n_seeds=args.n_seeds, seed=args.seed
    )
    spec = ModelSpec(
        dataset.feat_dim,
        args.hidden,
        dataset.n_classes,
        len(fanouts),
        args.aggregator,
    )
    budget = budget_bytes(dataset, args.budget_gb)
    clustering = dataset.stats(clustering_sample=500)["avg_clustering"]
    scheduler = BuffaloScheduler(
        spec,
        0.9 * budget,
        cutoff=fanouts[0],
        clustering_coefficient=clustering,
    )
    with _observability(args):
        plan = scheduler.schedule(prepared.batch, prepared.blocks)
    print(
        f"{args.dataset}: {prepared.batch.n_seeds} seeds -> K={plan.k} "
        f"bucket groups (budget {budget / 2**20:.0f} MiB, "
        f"split={'yes' if plan.split_applied else 'no'})"
    )
    for i, group in enumerate(plan.groups):
        print(f"  group {i}: {group}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    return 0


def _cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.summarize import render_summary, summarize_file

    if not Path(args.path).is_file():
        raise SystemExit(f"no such trace file: {args.path}")
    try:
        summary = summarize_file(args.path)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{args.path} is not a JSONL trace: {exc}")
    print(render_summary(summary, title=f"trace summary: {args.path}"))
    return 0


def _run_one_experiment(name: str) -> bool:
    module = importlib.import_module(f"repro.bench.experiments.{name}")
    output = module.run()
    print(output.table)
    print()
    for check, ok in output.shape_checks.items():
        print(f"  [{'PASS' if ok else 'FAIL'}] {check}")
    print()
    return all(output.shape_checks.values())


def _cmd_experiment(args) -> int:
    if args.list_all or args.name is None:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  all (runs every experiment)")
        return 0
    if args.name == "all":
        failed = [
            name for name in EXPERIMENTS if not _run_one_experiment(name)
        ]
        if failed:
            print(f"experiments with failed shape checks: {failed}")
            return 1
        print(f"all {len(EXPERIMENTS)} experiments passed")
        return 0
    if args.name not in EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {args.name!r}; "
            f"see `repro experiment --list`"
        )
    return 0 if _run_one_experiment(args.name) else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "train": _cmd_train,
        "schedule": _cmd_schedule,
        "trace": _cmd_trace,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
