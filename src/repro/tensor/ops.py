"""Module-level tensor operations: concatenation, stacking, row gather."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AutogradError
from repro.tensor.tensor import Tensor


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    if not tensors:
        raise AutogradError("concat of an empty sequence")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward_fn(grad: np.ndarray) -> None:
        pieces = np.split(grad, splits, axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward_fn)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    if not tensors:
        raise AutogradError("stack of an empty sequence")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward_fn)


def gather_rows(tensor: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``tensor[index]`` (the feature-gather of message passing).

    Equivalent to ``tensor[index]`` but keeps the index as a plain numpy
    array and scatters gradients with ``np.add.at`` so repeated indices
    accumulate correctly.
    """
    index = np.asarray(index)
    out_data = tensor.data[index]

    def backward_fn(grad: np.ndarray) -> None:
        full = np.zeros_like(tensor.data)
        np.add.at(full, index, grad)
        tensor._accumulate(full)

    return Tensor._make(out_data, (tensor,), backward_fn)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``a`` where ``condition`` else ``b``."""
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward_fn(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(
                np.broadcast_to(grad * condition, a.shape).astype(a.dtype)
                if grad.shape != a.shape
                else grad * condition
            )
        if b.requires_grad:
            masked = grad * ~condition
            b._accumulate(
                np.broadcast_to(masked, b.shape).astype(b.dtype)
                if masked.shape != b.shape
                else masked
            )

    return Tensor._make(out_data, (a, b), backward_fn)


def zeros_like(tensor: Tensor) -> Tensor:
    """A zero tensor with the same shape/dtype (no grad)."""
    return Tensor(np.zeros_like(tensor.data), device=tensor.device)
