"""A minimal reverse-mode autograd engine over numpy.

This is the substrate that PyTorch provides in the paper's implementation:
tensors with gradients, broadcasting-aware arithmetic, and the reductions
and indexing needed by GNN message passing.  Every tensor can be attached
to a :class:`repro.device.SimulatedGPU`, whose allocation ledger then
observes the true byte size of every activation the model creates — that
ledger is the "actual GPU memory" the paper's Table III validates against.
"""

from repro.tensor.tensor import Tensor, no_grad
from repro.tensor.ops import concat, gather_rows, stack, where, zeros_like
from repro.tensor.functional import (
    cross_entropy_with_logits,
    log_softmax,
    softmax,
)

__all__ = [
    "Tensor",
    "no_grad",
    "concat",
    "stack",
    "gather_rows",
    "where",
    "zeros_like",
    "softmax",
    "log_softmax",
    "cross_entropy_with_logits",
]
