"""Softmax-family functionals with numerically stable fused backward."""

from __future__ import annotations

import numpy as np

from repro.errors import AutogradError
from repro.tensor.tensor import Tensor


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward_fn(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        logits._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (logits,), backward_fn)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    probs = np.exp(out_data)

    def backward_fn(grad: np.ndarray) -> None:
        logits._accumulate(
            grad - probs * grad.sum(axis=axis, keepdims=True)
        )

    return Tensor._make(out_data, (logits,), backward_fn)


def cross_entropy_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    *,
    reduction: str = "mean",
) -> Tensor:
    """Cross-entropy of integer ``targets`` against row ``logits``.

    Args:
        logits: shape ``(n, n_classes)``.
        targets: int array of shape ``(n,)``.
        reduction: ``"mean"``, ``"sum"``, or ``"none"``.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise AutogradError(
            f"logits must be 2-D (n, classes), got shape {logits.shape}"
        )
    if targets.shape != (logits.shape[0],):
        raise AutogradError(
            f"targets shape {targets.shape} does not match logits rows "
            f"({logits.shape[0]})"
        )
    if reduction not in ("mean", "sum", "none"):
        raise AutogradError(f"unknown reduction {reduction!r}")

    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    losses = -log_probs[np.arange(n), targets]
    probs = np.exp(log_probs)

    if reduction == "mean":
        out_data = losses.mean()
    elif reduction == "sum":
        out_data = losses.sum()
    else:
        out_data = losses

    def backward_fn(grad: np.ndarray) -> None:
        dlogits = probs.copy()
        dlogits[np.arange(n), targets] -= 1.0
        if reduction == "mean":
            dlogits *= float(grad) / n
        elif reduction == "sum":
            dlogits *= float(grad)
        else:
            dlogits *= grad[:, None]
        logits._accumulate(dlogits)

    return Tensor._make(np.asarray(out_data), (logits,), backward_fn)
