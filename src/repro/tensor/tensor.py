"""The :class:`Tensor` autograd core.

Reverse-mode automatic differentiation over numpy arrays.  The graph is a
DAG of tensors; each non-leaf tensor stores its parents and a closure that
propagates its output gradient to them.  ``backward()`` runs a topological
sweep from a scalar loss.

Device accounting: when a tensor is created with (or inherits) a
``device``, the raw numpy buffer is registered with the device's memory
ledger.  Activation lifetime is then modeled faithfully by Python object
lifetime — saved activations stay referenced by backward closures until
the graph is released, exactly as a framework keeps activations until
``backward()`` completes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Sequence

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.errors import AutogradError

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after a broadcasted forward op."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Args:
        data: array-like; converted to the library float dtype when it is
            floating point (integer arrays keep their dtype — useful for
            index tensors).
        requires_grad: track gradients through this tensor.
        device: optional :class:`repro.device.SimulatedGPU`; the buffer is
            registered with its ledger (possibly raising
            :class:`~repro.errors.DeviceOutOfMemoryError`).
    """

    __slots__ = ("data", "grad", "requires_grad", "device", "_parents",
                 "_backward_fn", "__weakref__")

    def __init__(
        self,
        data,
        *,
        requires_grad: bool = False,
        device=None,
        _parents: tuple["Tensor", ...] = (),
        _backward_fn: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        arr = np.asarray(data)
        if np.issubdtype(arr.dtype, np.floating) and arr.dtype != FLOAT_DTYPE:
            arr = arr.astype(FLOAT_DTYPE)
        self.data = arr
        self.grad: np.ndarray | None = None  # guarded-by: owner-thread (autograd graphs are never shared across threads)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.device = device
        self._parents = _parents if self.requires_grad else ()
        self._backward_fn = _backward_fn if self.requires_grad else None
        if device is not None:
            device.track(self.data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """A new tensor sharing data, cut from the graph."""
        return Tensor(self.data, device=self.device)

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        device = next((p.device for p in parents if p.device is not None), None)
        return Tensor(
            data,
            requires_grad=requires,
            device=device,
            _parents=tuple(p for p in parents if p.requires_grad),
            _backward_fn=backward_fn if requires else None,
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
            if self.device is not None:
                # Gradient buffers live on the device too (they are what
                # makes backward the memory peak of real training).
                self.device.track(self.grad)
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            grad: seed gradient; defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise AutogradError("backward() on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Backward closures propagate whatever sits in ``node.grad``; stash
        # grads left over from earlier backward() calls so each pass
        # propagates only its own seed, then merge the stash back (PyTorch
        # retain_graph accumulation semantics).
        stash = [(node, node.grad) for node in topo if node.grad is not None]
        for node, _ in stash:
            node.grad = None

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

        for node, old in stash:
            node.grad = old if node.grad is None else node.grad + old

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward_fn)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.shape
                    )
                )

        return Tensor._make(out_data, (self, other), backward_fn)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise AutogradError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward_fn)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward_fn)

    def transpose(self, *axes: int) -> "Tensor":
        axes_ = tuple(axes) if axes else tuple(range(self.ndim))[::-1]
        out_data = self.data.transpose(axes_)
        inverse = np.argsort(axes_)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward_fn)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward_fn(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward_fn(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward_fn)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = (
            self.size
            if axis is None
            else np.prod(
                [self.shape[a] for a in np.atleast_1d(axis)]
            )
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        argmax = np.expand_dims(self.data.argmax(axis=axis), axis=axis)

        def backward_fn(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            full = np.zeros_like(self.data)
            np.put_along_axis(full, argmax, g, axis=axis)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward_fn)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward_fn)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward_fn)

    def sigmoid(self) -> "Tensor":
        # Overflow-safe: exponentiate only negative magnitudes.
        positive = self.data >= 0
        z = np.exp(-np.abs(self.data))
        out_data = np.where(positive, 1.0 / (1.0 + z), z / (1.0 + z))

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward_fn)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward_fn)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward_fn)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype)
        out_data = self.data * scale

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward_fn)
