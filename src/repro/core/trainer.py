"""Micro-batch training with gradient accumulation (paper Algorithm 2).

Each micro-batch runs forward + backward on its own block chain; since
micro-batch outputs are *disjoint* seed subsets and the loss is a sum
over output nodes, accumulating gradients across micro-batches and
stepping once reproduces full-batch training exactly (up to float
associativity) — the property behind the paper's Fig. 17 / Table IV.

The trainer drives both clocks: CPU phases are wall-timed by the
profiler; data loading and GPU compute advance the simulated device
clock via the analytic cost model, while the device's allocation ledger
observes the real activation bytes of the numpy execution.

The iteration is decomposed into ``begin_iteration`` /
``train_micro_batch`` / ``finish_iteration`` so that alternative
drivers — notably the staged producer/consumer engine in
:mod:`repro.pipeline.engine` — replay exactly the same operations in
exactly the same order as :meth:`MicroBatchTrainer.train_iteration`,
keeping gradient accumulation bit-for-bit identical regardless of how
micro-batches are prepared.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.catalog import Dataset
from repro.device.device import SimulatedGPU
from repro.device.profiler import Profiler
from repro.errors import ConvergenceError
from repro.gnn.block import Block
from repro.gnn.footprint import (
    ModelSpec,
    model_layer_footprints,
    training_dram_bytes,
    training_flops,
)
from repro.kernels.dispatch import resolve_backend, use_kernel_backend
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.obs.trace import get_tracer
from repro.tensor.functional import cross_entropy_with_logits
from repro.tensor.tensor import Tensor


class GradientContributions:
    """Schedule-order gradient reduction — the parity-defining semantics.

    Every trainer (single-device, data-parallel, split-parallel) zeroes
    gradients before each micro-batch, records the micro-batch's
    contribution here tagged with its *schedule index*, and reduces by
    summing contributions in ascending index order::

        acc = g_0.copy(); acc += g_1; acc += g_2; ...

    Because each contribution is a deterministic function of the
    (synchronized) parameters and the micro-batch alone, the reduced
    gradient is bit-for-bit identical no matter which device computed
    which micro-batch — the invariant the differential parity suite
    (``tests/core/test_split_parallel_parity.py``) pins.

    Contributions are host-side copies (not device-tracked); the reduced
    arrays are re-registered with the parameter's device by
    :meth:`apply` so gradient buffers stay visible to the ledger.
    """

    def __init__(self) -> None:
        self._by_index: dict[int, list[np.ndarray | None]] = {}
        self._loss_by_index: dict[int, float] = {}

    def record(
        self, index: int, parameters, loss_value: float
    ) -> None:
        """Snapshot one micro-batch's gradients and loss term."""
        if index in self._by_index:
            raise ConvergenceError(
                f"duplicate micro-batch schedule index {index}"
            )
        self._by_index[index] = [
            None if p.grad is None else p.grad.copy()
            for p in parameters
        ]
        self._loss_by_index[index] = float(loss_value)

    @property
    def n_recorded(self) -> int:
        return len(self._by_index)

    def reduced(self) -> list[np.ndarray | None]:
        """Sum contributions in schedule order (None where none exist)."""
        indices = sorted(self._by_index)
        if not indices:
            return []
        out: list[np.ndarray | None] = [
            None for _ in self._by_index[indices[0]]
        ]
        for index in indices:
            for j, grad in enumerate(self._by_index[index]):
                if grad is None:
                    continue
                if out[j] is None:
                    out[j] = grad.copy()
                else:
                    out[j] += grad
        return out

    def reduced_loss(self) -> float:
        """Loss terms summed in the same canonical schedule order."""
        total = 0.0
        for index in sorted(self._loss_by_index):
            total += self._loss_by_index[index]
        return total

    def apply(self, parameters, reduced=None) -> None:
        """Install the reduced gradients onto ``parameters``.

        ``reduced`` lets multiple replicas share one reduction; each
        call installs fresh copies so replicas never alias buffers.
        Gradient arrays are tracked on the parameter's device (they are
        part of real training's memory peak).
        """
        grads = self.reduced() if reduced is None else reduced
        for p, grad in zip(parameters, grads):
            if grad is None:
                p.grad = None
                continue
            p.grad = grad if reduced is None else grad.copy()
            if p.device is not None:
                p.device.track(p.grad)


@dataclass
class TrainResult:
    """Outcome of one training iteration.

    Attributes:
        loss: the full-batch-equivalent mean loss.
        peak_bytes: device peak memory across the iteration.
        n_micro_batches: micro-batches processed.
        micro_batch_peaks: per-micro-batch device peaks (empty without a
            device) — the concrete counterpart of Fig. 14's balance data.
        profiler: per-phase timing (wall + simulated).
    """

    loss: float
    peak_bytes: int
    n_micro_batches: int
    micro_batch_peaks: list = field(default_factory=list)
    profiler: Profiler = field(default_factory=Profiler)


class MicroBatchTrainer:
    """Runs Algorithm 2's inner loop over prepared micro-batches.

    Args:
        model: a :class:`~repro.gnn.sage.GraphSAGE` or
            :class:`~repro.gnn.gat.GAT` instance.
        spec: the matching :class:`ModelSpec` (drives the cost model).
        optimizer: optimizer over ``model.parameters()``.
        device: simulated GPU; ``None`` disables memory/time accounting.
        kernel_backend: bucket-aggregation backend name or instance
            ("reference" | "fused", see :mod:`repro.kernels`); the
            trainer scopes it around every micro-batch and marks the
            bucket-group boundary so the fused backend's workspace
            arena is reused across micro-batches.
        kernel_threads: worker threads for the fused backend's
            column-block sharded CSR execution (1 = serial, the
            default; results are bit-for-bit identical at any count).
        kernel_calibration: path to an autotuned dispatch calibration
            file (``repro bench kernels --tune``); ``None`` keeps the
            backend's own resolution (per-host default file, else the
            shipped crossover).

    Attributes:
        reuse: optional cross-group feature-reuse manager (a
            :class:`~repro.pipeline.reuse.FeatureReuseManager`).  When
            set, the simulated host->device feature transfer is routed
            through the device feature cache so rows shared between
            consecutive micro-batches are not re-transferred.  The
            numerics are unaffected — only the modeled transfer time
            changes.
    """

    def __init__(
        self,
        model: Module,
        spec: ModelSpec,
        optimizer: Optimizer,
        device: SimulatedGPU | None = None,
        *,
        kernel_backend: str = "reference",
        kernel_threads: int = 1,
        kernel_calibration: str | None = None,
    ) -> None:
        self.model = model
        self.spec = spec
        self.optimizer = optimizer
        self.device = device
        self.kernel = resolve_backend(kernel_backend)
        if kernel_threads != 1 or kernel_calibration is not None:
            self.kernel.configure_execution(
                calibration_path=kernel_calibration,
                n_threads=kernel_threads,
            )
        self._contributions = GradientContributions()
        self.reuse = None
        # Optional MemoryTimelineRecorder (obs.observatory.timeline);
        # None keeps the hot path at a single attribute check.
        self.timeline = None
        if device is not None:
            model.to_device(device)

    # ------------------------------------------------------------------
    def _simulate_compute(self, blocks: list[Block], profiler: Profiler) -> None:
        """Advance the device clock by the iteration's kernels."""
        if self.device is None:
            return
        footprints = model_layer_footprints(blocks, self.spec)
        duration = self.device.run_kernel(
            training_flops(footprints), training_dram_bytes(footprints)
        )
        profiler.add_sim("gpu_compute", duration)

    def _load_features(
        self,
        dataset: Dataset,
        node_map: np.ndarray,
        block: Block,
        profiler: Profiler,
        staged: np.ndarray | None = None,
    ) -> Tensor:
        """Place the input features on device.

        ``staged`` supplies a host-side feature array gathered ahead of
        time by a pipeline staging worker; when absent the gather runs
        inline.  Either way the simulated transfer is charged here, in
        the compute thread, so the device clock and ledger advance in
        schedule order.
        """
        global_nodes = node_map[block.src_nodes]
        features = (
            staged if staged is not None else dataset.features[global_nodes]
        )
        if self.device is not None:
            if self.reuse is not None:
                duration = self.reuse.stage(global_nodes)
            else:
                duration = self.device.load(features.nbytes)
            profiler.add_sim("data_loading", duration)
        return Tensor(features, device=self.device)

    # ------------------------------------------------------------------
    def begin_iteration(self) -> None:
        """Zero gradients and reset the device peak for a new iteration."""
        self.model.zero_grad()
        self._contributions = GradientContributions()
        if self.device is not None:
            self.device.reset_peak()

    def train_micro_batch(
        self,
        dataset: Dataset,
        node_map: np.ndarray,
        mb,
        cutoffs: list[int],
        total_outputs: int,
        profiler: Profiler,
        *,
        index: int = 0,
        staged_features: np.ndarray | None = None,
    ) -> tuple[float, int | None]:
        """Forward + backward one micro-batch, accumulating gradients.

        Returns ``(loss_contribution, peak_bytes)`` where ``peak_bytes``
        is ``None`` without a device.  The autograd graph is released
        before returning — the point of output-layer partitioning.
        """
        tracer = get_tracer()
        if self.device is not None:
            self.device.reset_peak()
        # Only documented protocol fields (blocks + seed_rows) are
        # touched here, so duck-typed micro-batches keep working.
        with tracer.span(
            "train.micro_batch",
            {
                "index": index,
                "n_output": int(len(mb.seed_rows)),
                "n_input": int(mb.blocks[0].n_src),
            },
        ) as mb_span:
            input_feats = self._load_features(
                dataset, node_map, mb.blocks[0], profiler, staged_features
            )
            # One micro-batch = one bucket group: the kernel backend's
            # workspace arena lives across the whole forward+backward
            # (backward completes inside this block, so end_group —
            # after which scratch may be reused — is safe) and is
            # recycled by the next micro-batch.
            with profiler.phase("forward_backward_wall"), use_kernel_backend(
                self.kernel
            ):
                self.kernel.begin_group()
                try:
                    logits = self.model(mb.blocks, input_feats, cutoffs)
                    labels = dataset.labels[node_map[mb.blocks[-1].dst_nodes]]
                    partial = cross_entropy_with_logits(
                        logits, labels, reduction="sum"
                    ) * (1.0 / total_outputs)
                    partial.backward()
                    loss_value = partial.item()
                finally:
                    self.kernel.end_group()
            # Canonical accumulation semantics: each micro-batch's
            # contribution is snapshot under its schedule index and the
            # gradients are re-zeroed, so finish_iteration's ordered
            # reduction is bit-identical no matter which device (or how
            # many) executed the micro-batches.
            self._contributions.record(
                index, self.model.parameters(), loss_value
            )
            self.model.zero_grad()
            self._simulate_compute(mb.blocks, profiler)
            peak = None
            if self.device is not None:
                peak = self.device.peak_bytes
                mb_span.set_attr("peak_bytes", peak)
            if self.timeline is not None:
                self.timeline.sample("micro_batch")
        # Release the autograd graph (activations) before the next
        # micro-batch — the point of output-layer partitioning.
        del logits, partial, input_feats
        gc.collect()
        return loss_value, peak

    def finish_iteration(
        self,
        loss_sum: float,
        micro_batch_peaks: list[int],
        n_micro_batches: int,
        profiler: Profiler,
    ) -> TrainResult:
        """One optimizer step over the schedule-order-reduced gradients."""
        if self._contributions.n_recorded:
            self._contributions.apply(self.model.parameters())
        with profiler.phase("optimizer_step"):
            self.optimizer.step()

        if not np.isfinite(loss_sum):
            raise ConvergenceError(f"non-finite loss: {loss_sum}")

        return TrainResult(
            loss=float(loss_sum),
            peak_bytes=max(micro_batch_peaks, default=0),
            n_micro_batches=n_micro_batches,
            micro_batch_peaks=micro_batch_peaks,
            profiler=profiler,
        )

    # ------------------------------------------------------------------
    def train_iteration(
        self,
        dataset: Dataset,
        node_map: np.ndarray,
        micro_batches: list,
        cutoffs: list[int],
        *,
        profiler: Profiler | None = None,
    ) -> TrainResult:
        """One full iteration: all micro-batches, then one optimizer step.

        Args:
            dataset: supplies features and labels (host side).
            node_map: batch-local -> dataset-global node ids.
            micro_batches: :class:`~repro.core.microbatch.MicroBatch`
                list (or any objects with ``blocks`` and ``seed_rows``).
            cutoffs: per-layer bucketing cut-offs aligned with blocks
                (input-most first).
            profiler: phase accumulator (created when omitted).
        """
        profiler = profiler or Profiler()
        total_outputs = sum(mb.n_output for mb in micro_batches)
        if total_outputs == 0:
            raise ConvergenceError("no output nodes to train on")

        self.begin_iteration()

        loss_sum = 0.0
        micro_batch_peaks: list[int] = []
        for index, mb in enumerate(micro_batches):
            loss_value, peak = self.train_micro_batch(
                dataset,
                node_map,
                mb,
                cutoffs,
                total_outputs,
                profiler,
                index=index,
            )
            loss_sum += loss_value
            if peak is not None:
                micro_batch_peaks.append(peak)

        return self.finish_iteration(
            loss_sum, micro_batch_peaks, len(micro_batches), profiler
        )
