"""Memory estimation for buckets and bucket groups (paper §IV-D).

``BucketMemEstimator`` computes ``M_est[i]`` — the training memory of the
micro-batch a bucket would generate on its own — by walking the batch's
block chain restricted to that bucket's rows (the paper obtains the same
``I``, ``O``, ``D`` quantities "during micro-batch generation") and
feeding the resulting per-layer degree histograms to the analytic
footprints of :mod:`repro.gnn.footprint`.

``redundancy_group_estimate`` implements Eq. 2 with the grouping ratio of
Eq. 1:

.. math::  R_{group}[i] = \\min(1, I_i / (O_i \\cdot D_i \\cdot C))

where ``I`` = input nodes, ``O`` = output nodes, ``D`` = bucket degree
and ``C`` = the graph's average clustering coefficient.  The ratio
discounts each bucket's standalone estimate by the node redundancy it
shares with the rest of its group — the source of the non-linear memory
behaviour the paper measures (micro-batches 25–60% larger than a linear
split would predict).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import SchedulingError
from repro.gnn.block import Block
from repro.gnn.bucketing import Bucket
from repro.gnn.footprint import (
    Footprint,
    ModelSpec,
    input_feature_bytes,
    layer_footprint,
    training_peak_bytes,
)


@dataclass(frozen=True)
class BucketProfile:
    """Reachability statistics of one output-layer bucket.

    Attributes:
        n_output: ``O`` — output nodes (bucket volume).
        degree: ``D`` — the bucket's sampled degree.
        n_input: ``I`` — distinct input-layer nodes the bucket depends on.
        layer_histograms: per layer (input-most first), the sampled-degree
            histogram of the rows processed at that layer.
    """

    n_output: int
    degree: int
    n_input: int
    layer_histograms: tuple[dict[int, int], ...]


class BucketMemEstimator:
    """Estimates memory for buckets of a batch's output layer.

    Args:
        blocks: the batch's chained blocks, input-most first.
        model: the workload's :class:`~repro.gnn.footprint.ModelSpec`.
        clustering_coefficient: the graph's average clustering
            coefficient ``C`` (obtained by offline analysis, Table II).
    """

    def __init__(
        self,
        blocks: list[Block],
        model: ModelSpec,
        clustering_coefficient: float,
    ) -> None:
        if len(blocks) != model.n_layers:
            raise SchedulingError(
                f"model depth {model.n_layers} does not match "
                f"{len(blocks)} blocks"
            )
        self.blocks = blocks
        self.model = model
        self.clustering = float(clustering_coefficient)
        # Keyed by bucket content (degree + row bytes) so the scheduler's
        # K-search reuses the reachability walks of the stable non-split
        # buckets without id-reuse hazards.
        self._profile_cache: dict[tuple[int, bytes], BucketProfile] = {}
        # Estimates keyed by profile identity (profiles are interned in
        # the cache above, so ids are stable while the estimator lives).
        self._estimate_cache: dict[int, float] = {}

    @staticmethod
    def _cache_key(bucket: Bucket) -> tuple[int, bytes]:
        return (bucket.degree, bucket.rows.tobytes())

    # ------------------------------------------------------------------
    def profile(self, bucket: Bucket) -> BucketProfile:
        """Walk the block chain restricted to ``bucket``'s rows (cached)."""
        key = self._cache_key(bucket)
        cached = self._profile_cache.get(key)
        if cached is not None:
            return cached
        histograms: list[dict[int, int]] = []
        rows = np.asarray(bucket.rows, dtype=INDEX_DTYPE)
        for block in reversed(self.blocks):
            degrees = block.indptr[rows + 1] - block.indptr[rows]
            uniq, counts = np.unique(degrees, return_counts=True)
            histograms.append(
                {int(d): int(c) for d, c in zip(uniq, counts)}
            )
            # Next layer's rows: the dst rows themselves (their hidden
            # states are inputs to the combine step) plus all gathered
            # neighbor positions; positions into src_nodes are row ids of
            # the previous block by the chain property.
            if degrees.sum() > 0:
                starts = block.indptr[rows]
                total = int(degrees.sum())
                offsets = np.zeros(rows.size, dtype=INDEX_DTYPE)
                np.cumsum(degrees[:-1], out=offsets[1:])
                flat_pos = (
                    np.repeat(starts - offsets, degrees)
                    + np.arange(total, dtype=INDEX_DTYPE)
                )
                neighbor_positions = block.indices[flat_pos]
                rows = np.unique(
                    np.concatenate([rows, neighbor_positions])
                )
            # Degree-0 rows keep only themselves.
        result = BucketProfile(
            n_output=bucket.volume,
            degree=bucket.degree,
            n_input=int(rows.size),
            layer_histograms=tuple(reversed(histograms)),
        )
        self._profile_cache[key] = result
        return result

    # ------------------------------------------------------------------
    def profile_many(self, buckets: list[Bucket]) -> list[BucketProfile]:
        """Profile many buckets in one segmented walk (cache-warming).

        The per-bucket reachability walks of :meth:`profile` are
        numpy-call-overhead bound; batching every bucket's frontier into
        a single (segment-id, row) array does one vectorized pass per
        layer for the whole set.  Results are identical to per-bucket
        :meth:`profile` calls (tests assert this) and are written into
        the cache, so subsequent lookups are free.
        """
        pending = [
            b for b in buckets if self._cache_key(b) not in self._profile_cache
        ]
        if pending:
            self._profile_batch(pending)
        return [self.profile(b) for b in buckets]

    def _profile_batch(self, buckets: list[Bucket]) -> None:
        seg = np.concatenate(
            [
                np.full(b.rows.size, i, dtype=INDEX_DTYPE)
                for i, b in enumerate(buckets)
            ]
        )
        rows = np.concatenate(
            [np.asarray(b.rows, dtype=INDEX_DTYPE) for b in buckets]
        )
        n_buckets = len(buckets)
        histograms: list[list[dict[int, int]]] = [[] for _ in buckets]

        for block in reversed(self.blocks):
            degrees = block.indptr[rows + 1] - block.indptr[rows]
            # Per-segment degree histogram in one bincount.
            max_d = int(degrees.max(initial=0))
            keys = seg * (max_d + 1) + degrees
            counts = np.bincount(keys, minlength=n_buckets * (max_d + 1))
            for i in range(n_buckets):
                hist = {}
                base = i * (max_d + 1)
                for d in range(max_d + 1):
                    c = int(counts[base + d])
                    if c:
                        hist[d] = c
                histograms[i].append(hist)

            if degrees.sum() > 0:
                total = int(degrees.sum())
                offsets = np.zeros(rows.size, dtype=INDEX_DTYPE)
                np.cumsum(degrees[:-1], out=offsets[1:])
                starts = block.indptr[rows]
                flat_pos = (
                    np.repeat(starts - offsets, degrees)
                    + np.arange(total, dtype=INDEX_DTYPE)
                )
                nbr_positions = block.indices[flat_pos]
                nbr_seg = np.repeat(seg, degrees)
                combined = np.concatenate([rows, nbr_positions])
                combined_seg = np.concatenate([seg, nbr_seg])
                # Per-segment unique via one lexsort.
                order = np.lexsort((combined, combined_seg))
                combined = combined[order]
                combined_seg = combined_seg[order]
                keep = np.ones(combined.size, dtype=bool)
                keep[1:] = (combined[1:] != combined[:-1]) | (
                    combined_seg[1:] != combined_seg[:-1]
                )
                rows = combined[keep]
                seg = combined_seg[keep]

        sizes = np.bincount(seg, minlength=n_buckets)
        for i, bucket in enumerate(buckets):
            profile = BucketProfile(
                n_output=bucket.volume,
                degree=bucket.degree,
                n_input=int(sizes[i]),
                layer_histograms=tuple(reversed(histograms[i])),
            )
            self._profile_cache[self._cache_key(bucket)] = profile

    def estimate(self, bucket: Bucket) -> float:
        """``M_est`` — standalone training memory of the bucket, bytes."""
        return self.estimate_from_profile(self.profile(bucket))

    def estimate_from_profile(self, profile: BucketProfile) -> float:
        cached = self._estimate_cache.get(id(profile))
        if cached is not None:
            return cached
        footprints: list[Footprint] = []
        for i, ((f_in, f_out), histogram) in enumerate(
            zip(self.model.layer_dims(), profile.layer_histograms)
        ):
            footprints.append(
                layer_footprint(
                    histogram,
                    f_in,
                    f_out,
                    self.model.aggregator,
                    self.model.hidden_dim,
                    input_requires_grad=(i > 0),
                )
            )
        estimate = training_peak_bytes(
            footprints,
            input_feature_bytes(profile.n_input, self.model.in_dim),
            self.model.param_bytes(),
        )
        self._estimate_cache[id(profile)] = estimate
        return estimate

    # ------------------------------------------------------------------
    def grouping_ratio(self, profile: BucketProfile) -> float:
        """Eq. 1: ``R_group = min(1, I / (O * D * C))``."""
        denominator = (
            profile.n_output * max(profile.degree, 1) * max(self.clustering, 1e-6)
        )
        return min(1.0, profile.n_input / denominator)


def redundancy_group_estimate(
    estimator: BucketMemEstimator,
    buckets: list[Bucket],
    *,
    profiles: dict[int, BucketProfile] | None = None,
) -> float:
    """Eq. 2: group memory = sum of ``M_est[i] * R_group[i]``.

    Args:
        estimator: the batch's estimator.
        buckets: the group's members.
        profiles: optional cache keyed by ``id(bucket)`` to avoid
            re-walking the block chain inside the grouping loop.
    """
    total = 0.0
    for bucket in buckets:
        if profiles is not None and id(bucket) in profiles:
            profile = profiles[id(bucket)]
        else:
            profile = estimator.profile(bucket)
            if profiles is not None:
                profiles[id(bucket)] = profile
        ratio = estimator.grouping_ratio(profile) if len(buckets) > 1 else 1.0
        total += estimator.estimate_from_profile(profile) * ratio
    return total
