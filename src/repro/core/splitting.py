"""SplitExplosionBucket (paper §IV-C, Algorithm 3 line 5).

Evenly splits the exploded cut-off bucket into ``k`` micro-buckets, each
with roughly the same number of output nodes.  Micro-buckets keep the
parent's degree label and record their split index, so the grouping step
can mix them freely with the non-split buckets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.gnn.bucketing import Bucket


def split_explosion_bucket(bucket: Bucket, k: int) -> list[Bucket]:
    """Split ``bucket`` into ``k`` even micro-buckets.

    Args:
        bucket: the bucket to split (typically the exploded cut-off
            bucket).
        k: number of micro-buckets; capped at the bucket volume (every
            micro-bucket is non-empty).

    Returns:
        Micro-buckets in row order; their row sets partition the
        parent's rows and sizes differ by at most one.
    """
    if k < 1:
        raise SchedulingError(f"split count must be >= 1, got {k}")
    k = min(k, bucket.volume)
    if k <= 1:
        return [bucket]
    pieces = np.array_split(bucket.rows, k)
    return [
        Bucket(degree=bucket.degree, rows=piece, micro_index=i)
        for i, piece in enumerate(pieces)
    ]
