"""High-level Buffalo facade.

Wires the full online pipeline of Fig. 6 for one training iteration:

1. sample a batch (subgraph) from the dataset;
2. generate the batch's blocks with the fast generator;
3. run the Buffalo scheduler (bucketize, split, group) under the memory
   constraint;
4. materialize micro-batches (fast block generation per group);
5. train with gradient accumulation (Algorithm 2).

All phases are profiled with the Fig. 11 phase names.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fastblock import generate_blocks_fast
from repro.core.microbatch import MicroBatch, generate_micro_batches
from repro.core.scheduler import BuffaloScheduler, SchedulePlan
from repro.core.trainer import MicroBatchTrainer, TrainResult
from repro.datasets.catalog import Dataset
from repro.device.device import SimulatedGPU
from repro.device.feature_cache import FeatureCache
from repro.device.profiler import Profiler
from repro.errors import SchedulingError
from repro.gnn.footprint import ModelSpec
from repro.gnn.gat import GAT
from repro.gnn.gcn import GCN
from repro.gnn.sage import GraphSAGE
from repro.graph.sampling import SampledBatch, sample_batch
from repro.kernels.dispatch import use_kernel_backend
from repro.nn.optim import Adam, Optimizer
from repro.obs.estimator import EstimatorTelemetry
from repro.obs.metrics import SMALL_COUNT_BUCKETS, get_metrics
from repro.obs.trace import get_tracer
from repro.pipeline.engine import (
    PipelineConfig,
    PipelineEngine,
    PipelineReport,
)
from repro.pipeline.reuse import FeatureReuseManager
from repro.store import FeatureStore, SchedulePrefetcher


def build_model(spec: ModelSpec, *, rng: int = 0):
    """Instantiate the model a :class:`ModelSpec` describes."""
    if spec.aggregator == "attention":
        return GAT(
            spec.in_dim,
            spec.hidden_dim,
            spec.n_classes,
            spec.n_layers,
            heads=spec.heads,
            rng=rng,
        )
    if spec.aggregator == "gcn":
        return GCN(
            spec.in_dim,
            spec.hidden_dim,
            spec.n_classes,
            spec.n_layers,
            rng=rng,
        )
    return GraphSAGE(
        spec.in_dim,
        spec.hidden_dim,
        spec.n_classes,
        spec.n_layers,
        aggregator=spec.aggregator,
        dropout=spec.dropout,
        rng=rng,
    )


@dataclass
class IterationReport:
    """Everything one Buffalo iteration produced."""

    result: TrainResult
    plan: SchedulePlan
    micro_batches: list[MicroBatch]
    batch: SampledBatch
    pipeline: PipelineReport | None = None

    @property
    def n_micro_batches(self) -> int:
        return self.plan.k


class BuffaloTrainer:
    """End-to-end Buffalo training on a dataset.

    Args:
        dataset: a loaded :class:`~repro.datasets.catalog.Dataset`.
        spec: model description; ``spec.in_dim`` must equal the dataset's
            feature width.
        device: simulated GPU supplying the memory constraint.
        fanouts: per-layer sampling sizes, output layer first (these are
            also the bucketing cut-offs, as in the paper).
        memory_constraint: per-micro-batch byte budget; defaults to 90%
            of the device capacity (headroom for parameters/optimizer).
        optimizer: optional custom optimizer (default Adam, lr=1e-3).
        seed: RNG seed for sampling and model init.
        pipeline_depth: prefetch-queue depth of the staged execution
            engine; ``1`` (the default) keeps the strictly sequential
            Algorithm 2 schedule.  Any depth yields bit-identical
            gradients — only stage overlap changes.
        pipeline_mode: ``"auto"`` | ``"sync"`` | ``"threaded"`` (see
            :class:`~repro.pipeline.engine.PipelineConfig`).
        reuse_features: pin feature rows that consecutive bucket groups
            both request in a device-resident cache, so they cross PCIe
            once per iteration instead of once per group.
        feature_cache_bytes: byte budget of the reuse cache; defaults
            to 10% of the device capacity.
        store_prefetch: when the dataset's features are served by an
            out-of-core :class:`~repro.store.FeatureStore`, warm each
            bucket group's input rows ahead of its compute using the
            schedule's input-node sets (on by default; numerics are
            identical either way).
        store_prefetch_depth: staged groups the prefetcher may run
            ahead (defaults to ``max(2, pipeline_depth)``).
        kernel_backend: bucket-aggregation kernel backend,
            ``"reference"`` (dense gather, bit-for-bit legacy
            semantics) or ``"fused"`` (CSR segment-reduce, no
            ``(n, d, f)`` neighbor tensor — see docs/kernels.md).
            Scheduling and execution both run under this backend so
            Eq. 1-2 estimates match the executed live set.
        kernel_threads: worker threads for the fused backend's sharded
            CSR execution (1 = serial; bit-for-bit at any count).
        kernel_calibration: path to an autotuned dispatch calibration
            file (``repro bench kernels --tune``); ``None`` keeps the
            backend's per-host default resolution.
    """

    def __init__(
        self,
        dataset: Dataset,
        spec: ModelSpec,
        device: SimulatedGPU,
        fanouts: list[int],
        *,
        memory_constraint: float | None = None,
        optimizer: Optimizer | None = None,
        lr: float = 1e-3,
        clustering_coefficient: float | None = None,
        seed: int = 0,
        k_max: int = 128,
        pipeline_depth: int = 1,
        pipeline_mode: str = "auto",
        reuse_features: bool = False,
        feature_cache_bytes: int | None = None,
        store_prefetch: bool = True,
        store_prefetch_depth: int | None = None,
        kernel_backend: str = "reference",
        kernel_threads: int = 1,
        kernel_calibration: str | None = None,
    ) -> None:
        if spec.in_dim != dataset.feat_dim:
            raise SchedulingError(
                f"spec.in_dim ({spec.in_dim}) must match dataset features "
                f"({dataset.feat_dim})"
            )
        if len(fanouts) != spec.n_layers:
            raise SchedulingError(
                f"need one fanout per layer: got {len(fanouts)} fanouts "
                f"for {spec.n_layers} layers"
            )
        self.dataset = dataset
        self.spec = spec
        self.device = device
        self.fanouts = list(fanouts)
        self.seed = seed
        if memory_constraint is None:
            capacity = device.capacity or 0
            memory_constraint = 0.9 * capacity if capacity else float("inf")
        if clustering_coefficient is None:
            clustering_coefficient = dataset.stats(
                clustering_sample=1000
            )["avg_clustering"]
        self.scheduler = BuffaloScheduler(
            spec,
            memory_constraint,
            cutoff=self.fanouts[0],
            clustering_coefficient=clustering_coefficient,
            k_max=k_max,
        )
        self.model = build_model(spec, rng=seed)
        self.optimizer = optimizer or Adam(self.model.parameters(), lr=lr)
        self.trainer = MicroBatchTrainer(
            self.model, spec, self.optimizer, device,
            kernel_backend=kernel_backend,
            kernel_threads=kernel_threads,
            kernel_calibration=kernel_calibration,
        )
        self.pipeline_config = PipelineConfig(
            depth=pipeline_depth, mode=pipeline_mode
        )
        self.engine = PipelineEngine(self.trainer, self.pipeline_config)
        # depth 1 + auto keeps the legacy (strictly sequential) path;
        # any explicit mode, or depth > 1, routes through the engine.
        self.use_pipeline = pipeline_depth > 1 or pipeline_mode != "auto"
        self.feature_cache: FeatureCache | None = None
        self.reuse: FeatureReuseManager | None = None
        if reuse_features:
            feat_bytes = int(
                dataset.feat_dim * dataset.features.dtype.itemsize
            )
            if feature_cache_bytes is None:
                capacity = device.capacity or 0
                feature_cache_bytes = (
                    int(0.1 * capacity) if capacity else 64 << 20
                )
            feature_cache_bytes = max(feature_cache_bytes, feat_bytes)
            self.feature_cache = FeatureCache(
                device, feat_bytes, feature_cache_bytes
            )
            self.reuse = FeatureReuseManager(self.feature_cache)
        # Out-of-core datasets expose their features as a FeatureStore;
        # the schedule-aware prefetcher overlaps its shard reads with
        # compute, one bucket group ahead of the trainer.
        self.store: FeatureStore | None = (
            dataset.features
            if isinstance(dataset.features, FeatureStore)
            else None
        )
        self.prefetcher: SchedulePrefetcher | None = None
        if self.store is not None and store_prefetch:
            self.prefetcher = SchedulePrefetcher(
                self.store,
                depth=store_prefetch_depth or max(2, pipeline_depth),
                threaded=self.pipeline_config.threaded,
            )
        self.telemetry = EstimatorTelemetry()
        self.timeline = None
        self._iteration = 0

    # ------------------------------------------------------------------
    def attach_timeline(self, *, max_samples: int = 100_000):
        """Attach a four-tier memory timeline recorder to this trainer.

        Wires the recorder to the device allocation ledger, the
        out-of-core feature store (when present), the feature-reuse
        cache (when enabled), and the kernel workspace arena; the
        micro-batch trainer samples after every micro-batch.  Returns
        the recorder.
        """
        from repro.obs.observatory.timeline import MemoryTimelineRecorder

        self.timeline = MemoryTimelineRecorder(
            device=self.device,
            store=self.store,
            cache=self.feature_cache,
            workspace=getattr(self.trainer.kernel, "workspace", None),
            max_samples=max_samples,
        )
        self.trainer.timeline = self.timeline
        return self.timeline

    def detach_timeline(self) -> None:
        self.timeline = None
        self.trainer.timeline = None

    # ------------------------------------------------------------------
    def _plan_batch(
        self,
        seeds: np.ndarray | None = None,
        *,
        profiler: Profiler | None = None,
    ):
        """Sample one batch and schedule it (no micro-batch generation)."""
        profiler = profiler or Profiler()
        if seeds is None:
            seeds = self.dataset.train_nodes

        with use_kernel_backend(self.trainer.kernel):
            return self._plan_batch_inner(seeds, profiler)

    def _plan_batch_inner(self, seeds, profiler):
        """Body of :meth:`_plan_batch`, with the kernel backend active.

        The Eq. 1-2 estimator consults the active backend's footprint
        formulas (fused retains less), so scheduling must run under the
        same backend the trainer executes with — otherwise K and the
        group boundaries would be planned for the wrong live set.
        """
        with profiler.phase("sampling") as span:
            batch = sample_batch(
                self.dataset.graph,
                seeds,
                self.fanouts,
                rng=self.seed + self._iteration,
            )
            span.set_attrs(
                {"n_seeds": batch.n_seeds, "n_layers": len(self.fanouts)}
            )
        with profiler.phase("block_generation") as span:
            blocks = generate_blocks_fast(batch)
            span.set_attr("n_input", blocks[0].n_src)
        with profiler.phase("buffalo_scheduling") as span:
            plan = self.scheduler.schedule(batch, blocks)
            span.set_attrs({"k": plan.k, "split": plan.split_applied})
        return batch, blocks, plan, profiler

    def prepare(
        self,
        seeds: np.ndarray | None = None,
        *,
        profiler: Profiler | None = None,
    ) -> tuple[SampledBatch, SchedulePlan, list[MicroBatch], Profiler]:
        """Sample, schedule, and materialize micro-batches for one batch."""
        batch, _blocks, plan, profiler = self._plan_batch(
            seeds, profiler=profiler
        )
        with profiler.phase("block_generation") as span:
            micro_batches = generate_micro_batches(batch, plan)
            span.set_attr("n_micro_batches", len(micro_batches))
        return batch, plan, micro_batches, profiler

    def run_iteration(
        self,
        seeds: np.ndarray | None = None,
        *,
        max_oom_retries: int = 2,
    ) -> IterationReport:
        """One full online-training iteration (Fig. 6 pipeline).

        OOM resilience: the memory estimator is analytical, so a group
        can occasionally exceed its estimate during concrete execution.
        When the device raises OOM mid-iteration, the scheduler's
        constraint is tightened by 25% and the iteration is re-planned
        and retried (up to ``max_oom_retries`` times) — the same
        fallback a production system performs.  The tightened
        constraint persists for subsequent iterations (the estimator's
        bias is systematic, not per-batch).

        Raises:
            DeviceOutOfMemoryError: when retries are exhausted.
        """
        from repro.errors import DeviceOutOfMemoryError

        cutoffs = list(reversed(self.fanouts))
        last_oom: DeviceOutOfMemoryError | None = None
        tracer = get_tracer()
        metrics = get_metrics()
        if self.timeline is not None:
            self.timeline.begin_iteration(self._iteration)
        for attempt in range(max_oom_retries + 1):
            with tracer.span(
                "buffalo.iteration",
                {"iteration": self._iteration, "attempt": attempt},
            ) as iter_span:
                try:
                    batch, blocks, plan, profiler = self._plan_batch(seeds)
                except SchedulingError:
                    # A tightened constraint can become unschedulable;
                    # that is the same terminal condition as the OOM
                    # that caused the tightening.
                    if last_oom is not None:
                        raise last_oom
                    raise
                oom_info: tuple[int, int, int] | None = None
                micro_batches: list[MicroBatch] = []
                pipeline_report: PipelineReport | None = None
                reuse_active = False
                prefetch_active = False
                try:
                    if self.reuse is not None:
                        local_sets = plan.input_node_sets(blocks)
                        self.reuse.begin_iteration(
                            [batch.node_map[s] for s in local_sets]
                        )
                        self.trainer.reuse = self.reuse
                        reuse_active = True
                    if self.prefetcher is not None:
                        local_sets = plan.input_node_sets(blocks)
                        self.prefetcher.begin_iteration(
                            [batch.node_map[s] for s in local_sets]
                        )
                        prefetch_active = True
                    if self.use_pipeline:
                        result, micro_batches, pipeline_report = (
                            self.engine.run(
                                self.dataset,
                                batch,
                                plan,
                                cutoffs,
                                profiler=profiler,
                            )
                        )
                    else:
                        with profiler.phase("block_generation") as span:
                            micro_batches = generate_micro_batches(
                                batch, plan
                            )
                            span.set_attr(
                                "n_micro_batches", len(micro_batches)
                            )
                        result = self.trainer.train_iteration(
                            self.dataset,
                            batch.node_map,
                            micro_batches,
                            cutoffs,
                            profiler=profiler,
                        )
                except DeviceOutOfMemoryError as exc:
                    if attempt == max_oom_retries:
                        raise
                    oom_info = (exc.requested, exc.live, exc.capacity)
                finally:
                    if reuse_active:
                        self.reuse.end_iteration()
                        self.trainer.reuse = None
                    if prefetch_active:
                        self.prefetcher.end_iteration()
                if oom_info is None:
                    iter_span.set_attrs(
                        {
                            "k": plan.k,
                            "loss": result.loss,
                            "peak_bytes": result.peak_bytes,
                        }
                    )
            if oom_info is not None:
                # Outside the except block the handled exception (and
                # its traceback, which pins the failed iteration's
                # activation graph in the device ledger) is released.
                last_oom = DeviceOutOfMemoryError(*oom_info)
                del batch, blocks, plan, micro_batches, profiler
                import gc

                gc.collect()
                if self.feature_cache is not None:
                    # Release cached rows: the retry recomputes the
                    # constraint from the device's real headroom, and
                    # resident cache bytes would distort it.
                    self.feature_cache.clear()
                # Snap to the device's real headroom (minus resident
                # parameters), then keep shaving 25% per further OOM.
                tightened = 0.75 * self.scheduler.memory_constraint
                if self.device.capacity:
                    headroom = 0.85 * (
                        self.device.capacity - self.device.live_bytes
                    )
                    tightened = min(tightened, headroom)
                self.scheduler.memory_constraint = max(tightened, 1.0)
                metrics.counter(
                    "buffalo.oom_retries",
                    help="iterations re-planned after device OOM",
                ).inc()
                continue
            metrics.counter(
                "buffalo.iterations", help="completed training iterations"
            ).inc()
            metrics.histogram(
                "buffalo.micro_batches_per_iter",
                SMALL_COUNT_BUCKETS,
                help="K (micro-batches) per iteration",
            ).observe(plan.k)
            metrics.gauge(
                "buffalo.peak_mem_bytes",
                help="device peak bytes of the last iteration",
            ).set(result.peak_bytes)
            self.telemetry.record_iteration(
                self._iteration,
                plan.estimated_bytes,
                result.micro_batch_peaks,
            )
            if self.timeline is not None:
                self.timeline.sample("iteration_end")
            self._iteration += 1
            return IterationReport(
                result=result,
                plan=plan,
                micro_batches=micro_batches,
                batch=batch,
                pipeline=pipeline_report,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def train_epochs(
        self, n_iterations: int, seeds: np.ndarray | None = None
    ) -> list[float]:
        """Run several iterations; returns the loss curve."""
        return [
            self.run_iteration(seeds).result.loss
            for _ in range(n_iterations)
        ]
