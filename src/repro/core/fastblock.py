"""Buffalo's accelerated block generation (paper §IV-E).

Two optimizations over the baseline
(:func:`repro.gnn.block_gen.generate_blocks_baseline`):

1. **No repeated connection checks** — the sampled subgraph's CSR rows
   *are* the selected neighbors, so each frontier expansion is a direct
   row gather instead of per-edge membership probes against the original
   graph.
2. **Node-level parallelism** — the gather is one vectorized ragged-array
   operation over the whole frontier (numpy vectorization standing in for
   the paper's parallel C++ row processing), instead of a serial per-node
   loop.

Both generators produce byte-identical blocks for the same batch, which
``tests/core/test_fastblock.py`` verifies.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.block import Block
from repro.gnn.block_gen import assemble_blocks
from repro.graph.sampling import SampledBatch
from repro.graph.subgraph import gather_rows
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer


def generate_blocks_fast(
    batch: SampledBatch,
    seeds_local: np.ndarray | None = None,
    *,
    n_layers: int | None = None,
) -> list[Block]:
    """Generate chained blocks with vectorized CSR row slicing.

    Args:
        batch: the sampled batch (its subgraph rows hold the sampled
            neighbors of every expanded node).
        seeds_local: output nodes (defaults to the batch's seeds); a
            bucket group's rows are passed here during micro-batch
            generation.
        n_layers: aggregation depth (defaults to the batch's).

    Returns:
        Blocks input-most first, identical to the baseline generator's.
    """
    if seeds_local is None:
        seeds_local = batch.seeds_local

    def row_fn(frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return gather_rows(batch.graph, frontier)

    # The span gate is one attribute check when tracing is disabled,
    # keeping the hot path clean; the counters are a few float adds.
    with get_tracer().span("fastblock.generate") as span:
        blocks = assemble_blocks(batch, seeds_local, row_fn, n_layers)
        total_nodes = sum(b.n_src for b in blocks)
        span.set_attrs(
            {
                "n_seeds": int(len(seeds_local)),
                "n_layers": len(blocks),
                "total_nodes": total_nodes,
            }
        )
    metrics = get_metrics()
    metrics.counter(
        "buffalo.block_gen_calls", help="fast block-generation invocations"
    ).inc()
    metrics.counter(
        "buffalo.block_gen_nodes",
        help="total source nodes across generated blocks",
    ).inc(total_nodes)
    return blocks
