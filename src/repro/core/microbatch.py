"""Micro-batch generation from scheduled bucket groups.

Each bucket group's output rows become the seed set of a fresh block
chain built with Buffalo's fast generator; the resulting
:class:`MicroBatch` carries everything a trainer needs (blocks + the
positions of its outputs within the original batch's seed order, for
label lookup and convergence bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fastblock import generate_blocks_fast
from repro.core.grouping import BucketGroup
from repro.core.scheduler import SchedulePlan
from repro.gnn.block import Block
from repro.graph.sampling import SampledBatch
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer


@dataclass
class MicroBatch:
    """One schedulable unit of training work.

    Attributes:
        blocks: chained blocks, input-most first; the output block's
            destinations are exactly this micro-batch's output nodes.
        seed_rows: positions of the outputs within the parent batch's
            seed array (ascending).
        group: the bucket group this micro-batch was built from.
    """

    blocks: list[Block]
    seed_rows: np.ndarray
    group: BucketGroup

    @property
    def n_output(self) -> int:
        return int(self.seed_rows.size)

    @property
    def n_input(self) -> int:
        """Input-layer width (nodes whose features must be loaded)."""
        return self.blocks[0].n_src

    def __repr__(self) -> str:
        return (
            f"MicroBatch(n_output={self.n_output}, "
            f"n_input={self.n_input}, layers={len(self.blocks)})"
        )


def materialize_micro_batch(
    batch: SampledBatch, group: BucketGroup
) -> MicroBatch:
    """Build the micro-batch of one scheduled bucket group.

    The parent batch's seeds occupy locals ``0..n_seeds``, so a group's
    output rows are directly the local seed ids to expand from.  This is
    the unit of work the pipelined engine's block-generation stage runs;
    :func:`generate_micro_batches` is the eager all-groups wrapper.
    """
    rows = group.rows  # sorted ascending
    blocks = generate_blocks_fast(batch, rows)
    micro_batch = MicroBatch(blocks=blocks, seed_rows=rows, group=group)
    get_metrics().counter(
        "buffalo.micro_batches_generated",
        help="micro-batches materialized from bucket groups",
    ).inc()
    return micro_batch


def generate_micro_batches(
    batch: SampledBatch, plan: SchedulePlan
) -> list[MicroBatch]:
    """Materialize one micro-batch per scheduled bucket group."""
    micro_batches = []
    with get_tracer().span(
        "micro_batch_generation", {"k": plan.k}
    ) as span:
        for group in plan.groups:
            micro_batches.append(materialize_micro_batch(batch, group))
        span.set_attr(
            "total_inputs", sum(mb.n_input for mb in micro_batches)
        )
    return micro_batches


def micro_batch_coverage(micro_batches: list[MicroBatch], n_seeds: int) -> bool:
    """True when the micro-batches' outputs partition all seeds."""
    covered = np.concatenate([mb.seed_rows for mb in micro_batches])
    return (
        covered.size == n_seeds
        and np.array_equal(np.sort(covered), np.arange(n_seeds))
    )
