"""Split-parallel Buffalo training across a simulated device fleet.

Where the data-parallel trainer (:mod:`repro.core.distributed`)
replicates the feature matrix and round-robins micro-batches, the
split-parallel trainer follows the GSplit/DistGNN direction: the
feature matrix is *partitioned* across devices in contiguous node-id
blocks (:func:`partition_nodes`), Algorithm 3's K-search is extended to
a joint (K, N) placement (:func:`plan_placement`) that assigns whole
bucket groups to devices under per-device Eq. 1-2 memory ledgers, and
every micro-batch's input features split into

* **local rows** — owned by the executing device, read from its
  resident shard at device-memory bandwidth
  (:meth:`~repro.device.fleet.DeviceFleet.shard_read`);
* **halo rows** — owned by peers, gathered over the interconnect
  (:meth:`~repro.device.fleet.DeviceFleet.exchange`, one latency charge
  per peer contacted).

Gradients are reduced with the canonical schedule-order semantics of
:class:`~repro.core.trainer.GradientContributions`, so split-parallel
training is **bit-for-bit** identical to data-parallel and
single-device training on the same schedule — Buffalo's full-batch
gradient-parity invariant survives the partitioning.  The simulated
clocks are the only thing N changes: per-device compute and halo
gathers overlap, the gradient ring all-reduce is a barrier.

Scheduling (sampling, block generation, the K-search, placement) stays
serial on the host, reproducing the paper's finding that only the
GPU-compute share of an iteration parallelizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.api import build_model
from repro.core.fastblock import generate_blocks_fast
from repro.core.grouping import mem_balanced_grouping, refine_balance
from repro.core.microbatch import MicroBatch, materialize_micro_batch
from repro.core.scheduler import BuffaloScheduler, SchedulePlan
from repro.core.trainer import (
    GradientContributions,
    MicroBatchTrainer,
    TrainResult,
)
from repro.datasets.catalog import Dataset
from repro.device.fleet import DeviceFleet
from repro.device.profiler import Profiler
from repro.errors import ReproError, SchedulingError
from repro.gnn.block import Block
from repro.gnn.footprint import ModelSpec, input_feature_bytes
from repro.graph.sampling import SampledBatch, sample_batch
from repro.nn.optim import Adam, Optimizer
from repro.obs.metrics import BYTE_BUCKETS, get_metrics
from repro.obs.trace import get_tracer
from repro.pipeline.model import StageTiming

__all__ = [
    "SplitPlacement",
    "SplitIteration",
    "SplitParallelBuffaloTrainer",
    "partition_nodes",
    "plan_placement",
    "ensure_group_count",
]


def partition_nodes(n_nodes: int, n_devices: int) -> np.ndarray:
    """Owner device of every global node id (contiguous blocks).

    Node ids are split into ``n_devices`` contiguous ranges of (nearly)
    equal size — the standard block partition of a feature matrix.
    Returns an int array of length ``n_nodes`` with values in
    ``[0, n_devices)``.
    """
    if n_devices < 1:
        raise SchedulingError(
            f"need at least 1 device, got {n_devices}"
        )
    if n_nodes < 0:
        raise SchedulingError(f"negative node count {n_nodes}")
    block = max(1, -(-n_nodes // n_devices))  # ceil division
    owner = np.arange(n_nodes, dtype=np.int64) // block
    return np.minimum(owner, n_devices - 1)


@dataclass
class SplitPlacement:
    """A joint (K, N) placement of bucket groups onto devices.

    Attributes:
        assignments: device index of each bucket group, in schedule
            order (``len == plan.k``).
        n_devices: fleet size N.
        owner: global-node-id -> owning device (the feature partition).
        input_sets: per-group *global* input node ids, schedule order.
        halo_sets: per-device sorted global node ids the device needs
            but does not own (the cross-partition intersection of its
            groups' input sets with other devices' partitions).
        per_device_bytes: per-device Eq. 1-2 ledger — the worst single
            group estimate placed on each device (groups execute
            sequentially, releasing activations in between).
        regrouped: True when Algorithm 3 returned K < N and the buckets
            were regrouped to K = N (the joint search's second axis).
    """

    assignments: list[int]
    n_devices: int
    owner: np.ndarray
    input_sets: list[np.ndarray]
    halo_sets: list[np.ndarray]
    per_device_bytes: list[float]
    regrouped: bool = False

    @property
    def halo_bytes_estimate(self) -> int:
        """Total halo rows across devices, in feature-matrix rows."""
        return int(sum(s.size for s in self.halo_sets))

    def groups_of(self, device: int) -> list[int]:
        """Schedule indices of the groups placed on ``device``."""
        return [
            i for i, d in enumerate(self.assignments) if d == device
        ]


def ensure_group_count(
    plan: SchedulePlan,
    n_devices: int,
    memory_constraint: float,
) -> tuple[SchedulePlan, bool]:
    """Joint (K, N) search: raise K to at least N when Algorithm 3
    returned fewer groups than devices.

    The K-search optimizes memory alone; with N devices a K < N plan
    would leave devices idle, so the final buckets are regrouped into
    ``max(K, N)`` groups with the same Algorithm 4 packer (splitting
    the largest buckets further when there are fewer buckets than
    devices).  Returns ``(plan, regrouped)`` — the original plan object
    when K >= N already.
    """
    if n_devices < 1:
        raise SchedulingError(
            f"need at least 1 device, got {n_devices}"
        )
    if plan.k >= n_devices:
        return plan, False
    from repro.core.splitting import split_explosion_bucket

    buckets = list(plan.buckets)
    # More groups than buckets is impossible; cut the widest buckets
    # into halves until there is one granule per device (or every
    # bucket is a single output row).
    while len(buckets) < n_devices:
        widest = max(buckets, key=lambda b: b.volume)
        if widest.volume <= 1:
            break
        buckets.remove(widest)
        buckets.extend(split_explosion_bucket(widest, 2))
    k = min(n_devices, len(buckets))
    success, groups = mem_balanced_grouping(
        buckets, k, memory_constraint, plan.estimator
    )
    if not success:
        raise SchedulingError(
            f"no feasible K={k} regrouping for {n_devices} devices "
            f"under constraint {memory_constraint / 2**30:.2f} GiB"
        )
    if 1 < len(groups) <= 32:
        groups = refine_balance(groups, plan.estimator)
    return (
        SchedulePlan(
            groups=groups,
            k=len(groups),
            split_applied=True,
            buckets=buckets,
            estimator=plan.estimator,
        ),
        True,
    )


def plan_placement(
    plan: SchedulePlan,
    blocks: list[Block],
    batch: SampledBatch,
    n_devices: int,
    memory_constraint: float,
    *,
    owner: np.ndarray | None = None,
    n_nodes: int | None = None,
) -> SplitPlacement:
    """Assign the plan's bucket groups to devices and derive halo sets.

    The assignment is the same LPT greedy Algorithm 4 uses for buckets,
    lifted one level: groups (largest Eq. 2 estimate first) go to the
    device with the least total estimated load, which balances the
    per-device compute streams.  Each device's memory ledger is the
    *maximum* group estimate it hosts — groups run sequentially with
    activations released in between — and must fit the constraint.

    Halo sets reuse ``SchedulePlan.input_node_sets``: device ``d``'s
    halo is the union of its groups' input nodes (mapped to global ids
    via ``batch.node_map``) minus the nodes ``d`` owns.
    """
    if owner is None:
        if n_nodes is None:
            raise SchedulingError(
                "plan_placement needs `owner` or `n_nodes`"
            )
        owner = partition_nodes(n_nodes, n_devices)
    estimates = plan.estimated_bytes
    oversize = [
        e for e in estimates if e > memory_constraint
    ]
    if oversize:
        raise SchedulingError(
            f"{len(oversize)} group(s) exceed the per-device budget "
            f"{memory_constraint / 2**30:.2f} GiB"
        )
    # LPT over groups: largest first onto the least-loaded device.
    order = sorted(
        range(plan.k), key=lambda i: estimates[i], reverse=True
    )
    load = [0.0] * n_devices
    worst = [0.0] * n_devices
    assignments = [0] * plan.k
    for i in order:
        target = min(range(n_devices), key=lambda d: load[d])
        assignments[i] = target
        load[target] += estimates[i]
        worst[target] = max(worst[target], estimates[i])

    local_sets = plan.input_node_sets(blocks)
    input_sets = [batch.node_map[s] for s in local_sets]
    halo_sets: list[np.ndarray] = []
    for d in range(n_devices):
        needed = [
            input_sets[i] for i in range(plan.k) if assignments[i] == d
        ]
        if not needed:
            halo_sets.append(np.empty(0, dtype=np.int64))
            continue
        union = np.unique(np.concatenate(needed))
        halo_sets.append(union[owner[union] != d])
    return SplitPlacement(
        assignments=assignments,
        n_devices=n_devices,
        owner=owner,
        input_sets=input_sets,
        halo_sets=halo_sets,
        per_device_bytes=worst,
    )


class _ShardStager:
    """Feature staging policy pricing shard reads + halo exchange.

    Duck-types the ``reuse`` hook of
    :meth:`~repro.core.trainer.MicroBatchTrainer._load_features`:
    ``stage(global_nodes)`` returns the simulated staging duration.
    Owned rows cost device-memory bandwidth on the executing device;
    halo rows cross the interconnect with one latency charge per peer
    that owns any of them.  Partitioning changes modeled time, never
    numerics — the host gather is identical either way.
    """

    def __init__(
        self,
        fleet: DeviceFleet,
        device_index: int,
        owner: np.ndarray,
        row_bytes: int,
    ) -> None:
        self.fleet = fleet
        self.device_index = device_index
        self.owner = owner
        self.row_bytes = row_bytes
        self.last_stage_s = 0.0

    def stage(self, global_nodes: np.ndarray) -> float:
        owners = self.owner[global_nodes]
        halo_mask = owners != self.device_index
        n_halo = int(halo_mask.sum())
        n_local = int(global_nodes.size - n_halo)
        duration = self.fleet.shard_read(
            self.device_index, n_local * self.row_bytes
        )
        if n_halo:
            n_peers = int(np.unique(owners[halo_mask]).size)
            duration += self.fleet.exchange(
                self.device_index,
                n_halo * self.row_bytes,
                n_peers=n_peers,
            )
        self.last_stage_s = duration
        return duration


@dataclass
class SplitIteration:
    """Outcome of one split-parallel iteration."""

    loss: float
    n_micro_batches: int
    per_device_peaks: list[int]
    sim_time_s: float
    comm_time_s: float
    halo_bytes: int
    allreduce_bytes: int
    halo_exchange_s: float
    placement: SplitPlacement
    plan: SchedulePlan
    timings: list[StageTiming] = field(default_factory=list)
    profiler: Profiler = field(default_factory=Profiler)

    @property
    def result(self) -> TrainResult:
        """TrainResult view for :class:`~repro.training.loop.TrainingLoop`."""
        return TrainResult(
            loss=self.loss,
            peak_bytes=max(self.per_device_peaks, default=0),
            n_micro_batches=self.n_micro_batches,
            micro_batch_peaks=list(self.per_device_peaks),
            profiler=self.profiler,
        )


class SplitParallelBuffaloTrainer:
    """Buffalo training with bucket groups split across a device fleet.

    Args:
        dataset: training data; the feature matrix is modeled as
            partitioned device-resident (contiguous node-id blocks).
        spec: model description (replicated per device; parameters are
            small next to activations, the paper's §V-G premise).
        devices: the :class:`DeviceFleet` (or a device count, which
            builds a PCIe-peered RTX 6000 fleet).
        fanouts: per-layer sampling sizes (output layer first).
        memory_constraint: per-micro-batch = per-device budget;
            defaults to 90% of a single device's capacity.
        seed: sampling/init seed (all replicas share initialization).
    """

    def __init__(
        self,
        dataset: Dataset,
        spec: ModelSpec,
        devices: DeviceFleet | int,
        fanouts: list[int],
        *,
        memory_constraint: float | None = None,
        lr: float = 1e-3,
        clustering_coefficient: float | None = None,
        seed: int = 0,
        k_max: int = 128,
    ) -> None:
        if spec.in_dim != dataset.feat_dim:
            raise SchedulingError(
                f"spec.in_dim ({spec.in_dim}) must match dataset features "
                f"({dataset.feat_dim})"
            )
        if isinstance(devices, int):
            devices = DeviceFleet(devices)
        self.dataset = dataset
        self.spec = spec
        self.fleet = devices
        self.fanouts = list(fanouts)
        self.seed = seed
        if memory_constraint is None:
            capacity = devices.devices[0].capacity or 0
            memory_constraint = 0.9 * capacity if capacity else float("inf")
        if clustering_coefficient is None:
            clustering_coefficient = dataset.stats(
                clustering_sample=1000
            )["avg_clustering"]
        self.scheduler = BuffaloScheduler(
            spec,
            memory_constraint,
            cutoff=self.fanouts[0],
            clustering_coefficient=clustering_coefficient,
            k_max=k_max,
        )
        # Identical initialization on every replica.
        self.replicas = [
            build_model(spec, rng=seed) for _ in devices.devices
        ]
        self.optimizers: list[Optimizer] = [
            Adam(replica.parameters(), lr=lr) for replica in self.replicas
        ]
        self.trainers = [
            MicroBatchTrainer(replica, spec, optimizer, device)
            for replica, optimizer, device in zip(
                self.replicas, self.optimizers, devices.devices
            )
        ]
        self.owner = partition_nodes(
            dataset.graph.n_nodes, devices.n_devices
        )
        # Replace the host->device transfer pricing with shard-read +
        # halo-exchange pricing; the trainers' math is untouched.
        row_bytes = input_feature_bytes(1, dataset.feat_dim)
        for d, trainer in enumerate(self.trainers):
            trainer.reuse = _ShardStager(
                devices, d, self.owner, row_bytes
            )
        self.timeline = None
        self._iteration = 0

    @property
    def model(self):
        """The (synchronized) model; replica 0 by convention."""
        return self.replicas[0]

    @property
    def n_devices(self) -> int:
        return self.fleet.n_devices

    # ------------------------------------------------------------------
    def attach_timeline(self, *, max_samples: int = 100_000):
        """Attach a memory timeline recorder over the fleet's ledgers.

        The recorder's device tier reads the fleet-wide views
        (``live_bytes`` = sum of shards, ``peak_bytes`` = worst single
        device); sampled once per micro-batch.  Returns the recorder.
        """
        from repro.obs.observatory.timeline import MemoryTimelineRecorder

        self.timeline = MemoryTimelineRecorder(
            device=self.fleet, max_samples=max_samples
        )
        return self.timeline

    def detach_timeline(self) -> None:
        self.timeline = None

    # ------------------------------------------------------------------
    def run_iteration(
        self, seeds: np.ndarray | None = None
    ) -> SplitIteration:
        """One split-parallel iteration over one sampled batch."""
        if seeds is None:
            seeds = self.dataset.train_nodes
        tracer = get_tracer()
        profiler = Profiler()
        if self.timeline is not None:
            self.timeline.begin_iteration(self._iteration)
        with profiler.phase("sampling"):
            batch = sample_batch(
                self.dataset.graph,
                seeds,
                self.fanouts,
                rng=self.seed + self._iteration,
            )
        with profiler.phase("block_generation"):
            blocks = generate_blocks_fast(batch)
        with profiler.phase("buffalo_scheduling"):
            plan = self.scheduler.schedule(batch, blocks)
            plan, regrouped = ensure_group_count(
                plan,
                self.fleet.n_devices,
                self.scheduler.memory_constraint,
            )
        with profiler.phase("placement"), tracer.span(
            "split.placement",
            {"k": plan.k, "n_devices": self.fleet.n_devices},
        ) as span:
            placement = plan_placement(
                plan,
                blocks,
                batch,
                self.fleet.n_devices,
                self.scheduler.memory_constraint,
                owner=self.owner,
            )
            placement.regrouped = regrouped
            span.set_attrs(
                {
                    "regrouped": regrouped,
                    "halo_rows": placement.halo_bytes_estimate,
                }
            )

        halo_bytes_before = self.fleet.halo_bytes
        exchange_s_before = self.fleet.exchange_time_s
        for device in self.fleet.devices:
            device.reset_peak()
        for replica in self.replicas:
            replica.zero_grad()

        cutoffs = list(reversed(self.fanouts))
        total_outputs = batch.n_seeds
        # All device trainers record into one shared contribution set
        # keyed by global schedule index, so the reduction is the
        # canonical single-device one regardless of placement.
        contributions = GradientContributions()
        for trainer in self.trainers:
            trainer._contributions = contributions
        per_device_peaks = [0] * self.fleet.n_devices
        timings: list[StageTiming] = []
        # Schedule order on the host; each micro-batch's compute and
        # halo traffic land on its assigned device's clock, so device
        # streams overlap while this loop stays serial (the paper's
        # serial-host finding).
        for i, group in enumerate(plan.groups):
            d = placement.assignments[i]
            trainer = self.trainers[d]
            device = self.fleet.devices[d]
            gen_start = time.perf_counter()
            with profiler.phase("block_generation"):
                mb: MicroBatch = materialize_micro_batch(batch, group)
            gen_s = time.perf_counter() - gen_start
            sim_before = device.sim_time_s
            compute_start = time.perf_counter()
            _, peak = trainer.train_micro_batch(
                self.dataset,
                batch.node_map,
                mb,
                cutoffs,
                total_outputs,
                profiler,
                index=i,
            )
            stage_s = trainer.reuse.last_stage_s
            compute_s = (
                time.perf_counter()
                - compute_start
                + (device.sim_time_s - sim_before)
                - stage_s
            )
            per_device_peaks[d] = max(per_device_peaks[d], peak or 0)
            timings.append(
                StageTiming(
                    block_gen_s=gen_s,
                    staging_s=stage_s,
                    compute_s=compute_s,
                )
            )
            if self.timeline is not None:
                self.timeline.sample("micro_batch")

        # Ring all-reduce of the parameter-sized gradient, then the
        # canonical reduction installed on every replica: identical
        # gradients -> identical Adam steps -> replicas stay in sync.
        comm_s = self.fleet.allreduce(self.spec.param_bytes())
        reduced = contributions.reduced()
        for replica in self.replicas:
            contributions.apply(replica.parameters(), reduced)
        for optimizer in self.optimizers:
            optimizer.step()
        self._verify_sync()

        loss = contributions.reduced_loss()
        halo_bytes = self.fleet.halo_bytes - halo_bytes_before
        halo_s = self.fleet.exchange_time_s - exchange_s_before
        self._record_metrics(
            placement, per_device_peaks, halo_bytes, halo_s, comm_s
        )
        if self.timeline is not None:
            self.timeline.sample("iteration_end")
        self._iteration += 1
        return SplitIteration(
            loss=float(loss),
            n_micro_batches=plan.k,
            per_device_peaks=per_device_peaks,
            sim_time_s=self.fleet.sim_time_s,
            comm_time_s=comm_s,
            halo_bytes=halo_bytes,
            allreduce_bytes=(
                self.spec.param_bytes()
                if self.fleet.n_devices > 1
                else 0
            ),
            halo_exchange_s=halo_s,
            placement=placement,
            plan=plan,
            timings=timings,
            profiler=profiler,
        )

    def _record_metrics(
        self,
        placement: SplitPlacement,
        per_device_peaks: list[int],
        halo_bytes: int,
        halo_s: float,
        comm_s: float,
    ) -> None:
        metrics = get_metrics()
        metrics.gauge(
            "buffalo.device.count", help="devices in the training fleet"
        ).set(self.fleet.n_devices)
        peaks = metrics.histogram(
            "buffalo.device.peak_bytes",
            BYTE_BUCKETS,
            help="per-device peak bytes per iteration",
        )
        for peak in per_device_peaks:
            peaks.observe(peak)
        metrics.counter(
            "buffalo.device.halo_bytes",
            help="halo feature bytes exchanged across partitions",
        ).inc(halo_bytes)
        metrics.counter(
            "buffalo.device.allreduce_bytes",
            help="gradient bytes all-reduced across the fleet",
        ).inc(
            self.spec.param_bytes() if self.fleet.n_devices > 1 else 0
        )
        metrics.counter(
            "buffalo.device.halo_exchange_s",
            help="simulated seconds of halo-feature exchange",
        ).inc(halo_s)
        metrics.counter(
            "buffalo.device.allreduce_s",
            help="simulated seconds of gradient all-reduce",
        ).inc(comm_s)

    def _verify_sync(self) -> None:
        """Replicas must stay bit-identical after each step."""
        reference = self.replicas[0].state_dict()
        for replica in self.replicas[1:]:
            state = replica.state_dict()
            for key, value in reference.items():
                if not np.array_equal(value, state[key]):
                    raise ReproError(
                        f"replica desynchronized at parameter {key}"
                    )
