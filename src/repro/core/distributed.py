"""Data-parallel Buffalo training across multiple simulated GPUs (§V-G).

Micro-batches from the Buffalo scheduler are round-robined over the
devices; each device records its micro-batches' gradient contributions
(priced as a ring all-reduce on the interconnect clock), and every
replica installs the same canonical schedule-order reduction
(:class:`~repro.core.trainer.GradientContributions`) before stepping
identically.  Because each contribution is a deterministic function of
the synchronized parameters and the micro-batch alone, the reduced
gradient is *bit-for-bit* the single-device gradient — data parallelism
inherits Buffalo's full-batch parity invariant, not just its
convergence guarantee.

The paper's finding is reproduced by construction: only the GPU-compute
share of the iteration parallelizes; scheduling and micro-batch
generation stay serial on the host.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import build_model
from repro.core.fastblock import generate_blocks_fast
from repro.core.microbatch import MicroBatch, generate_micro_batches
from repro.core.scheduler import BuffaloScheduler
from repro.core.trainer import (
    GradientContributions,
    MicroBatchTrainer,
    TrainResult,
)
from repro.datasets.catalog import Dataset
from repro.device.device import MultiGPU
from repro.device.profiler import Profiler
from repro.errors import ReproError, SchedulingError
from repro.gnn.footprint import ModelSpec
from repro.graph.sampling import sample_batch
from repro.nn.optim import Adam, Optimizer
from repro.tensor.functional import cross_entropy_with_logits
from repro.tensor.tensor import Tensor


@dataclass
class DistributedIteration:
    """Outcome of one data-parallel iteration."""

    loss: float
    n_micro_batches: int
    per_device_peaks: list[int]
    sim_time_s: float
    comm_time_s: float

    @property
    def result(self) -> TrainResult:
        """TrainResult view for :class:`~repro.training.loop.TrainingLoop`."""
        return TrainResult(
            loss=self.loss,
            peak_bytes=max(self.per_device_peaks, default=0),
            n_micro_batches=self.n_micro_batches,
            micro_batch_peaks=list(self.per_device_peaks),
        )


class DataParallelBuffaloTrainer:
    """Buffalo training replicated over a :class:`MultiGPU` group.

    Args:
        dataset: training data.
        spec: model description (replicated per device).
        devices: the simulated GPU group.
        fanouts: per-layer sampling sizes (output layer first).
        memory_constraint: per-micro-batch budget; defaults to 90% of a
            single device's capacity.
        seed: sampling/init seed (all replicas share initialization).
    """

    def __init__(
        self,
        dataset: Dataset,
        spec: ModelSpec,
        devices: MultiGPU,
        fanouts: list[int],
        *,
        memory_constraint: float | None = None,
        lr: float = 1e-3,
        clustering_coefficient: float | None = None,
        seed: int = 0,
        k_max: int = 128,
    ) -> None:
        if spec.in_dim != dataset.feat_dim:
            raise SchedulingError(
                f"spec.in_dim ({spec.in_dim}) must match dataset features "
                f"({dataset.feat_dim})"
            )
        self.dataset = dataset
        self.spec = spec
        self.devices = devices
        self.fanouts = list(fanouts)
        self.seed = seed
        if memory_constraint is None:
            capacity = devices.devices[0].capacity or 0
            memory_constraint = 0.9 * capacity if capacity else float("inf")
        if clustering_coefficient is None:
            clustering_coefficient = dataset.stats(
                clustering_sample=1000
            )["avg_clustering"]
        self.scheduler = BuffaloScheduler(
            spec,
            memory_constraint,
            cutoff=self.fanouts[0],
            clustering_coefficient=clustering_coefficient,
            k_max=k_max,
        )
        # Identical initialization on every replica.
        self.replicas = [
            build_model(spec, rng=seed) for _ in devices.devices
        ]
        self.optimizers: list[Optimizer] = [
            Adam(replica.parameters(), lr=lr) for replica in self.replicas
        ]
        self.trainers = [
            MicroBatchTrainer(replica, spec, optimizer, device)
            for replica, optimizer, device in zip(
                self.replicas, self.optimizers, devices.devices
            )
        ]
        self._iteration = 0

    @property
    def model(self):
        """The (synchronized) model; replica 0 by convention."""
        return self.replicas[0]

    def run_iteration(
        self, seeds: np.ndarray | None = None
    ) -> DistributedIteration:
        """One data-parallel iteration over one sampled batch."""
        if seeds is None:
            seeds = self.dataset.train_nodes
        profiler = Profiler()
        with profiler.phase("sampling"):
            batch = sample_batch(
                self.dataset.graph,
                seeds,
                self.fanouts,
                rng=self.seed + self._iteration,
            )
        with profiler.phase("block_generation"):
            blocks = generate_blocks_fast(batch)
        with profiler.phase("buffalo_scheduling"):
            plan = self.scheduler.schedule(batch, blocks)
        micro_batches = generate_micro_batches(batch, plan)

        # Round-robin micro-batches over devices; each replica records
        # its share's per-micro-batch gradient contributions (tagged
        # with the *global* schedule index) WITHOUT stepping.
        n_dev = len(self.trainers)
        shares: list[list[tuple[int, MicroBatch]]] = [
            [] for _ in range(n_dev)
        ]
        for i, mb in enumerate(micro_batches):
            shares[i % n_dev].append((i, mb))

        total_outputs = batch.n_seeds
        cutoffs = list(reversed(self.fanouts))
        contributions = GradientContributions()
        for trainer, share, device in zip(
            self.trainers, shares, self.devices.devices
        ):
            if not share:
                continue
            trainer.model.zero_grad()
            device.reset_peak()
            for i, mb in share:
                feats = self.dataset.features[
                    batch.node_map[mb.blocks[0].src_nodes]
                ]
                device.load(feats.nbytes)
                input_feats = Tensor(feats, device=device)
                logits = trainer.model(mb.blocks, input_feats, cutoffs)
                labels = self.dataset.labels[
                    batch.node_map[mb.blocks[-1].dst_nodes]
                ]
                partial = cross_entropy_with_logits(
                    logits, labels, reduction="sum"
                ) * (1.0 / total_outputs)
                partial.backward()
                contributions.record(
                    i, trainer.model.parameters(), partial.item()
                )
                trainer.model.zero_grad()
                trainer._simulate_compute(mb.blocks, profiler)
                del logits, partial, input_feats

        # Ring all-reduce on the modeled clock, then the canonical
        # schedule-order reduction on every replica: the installed
        # gradient is bit-for-bit the single-device gradient.
        comm_s = self.devices.allreduce(self.spec.param_bytes())
        reduced = contributions.reduced()
        for replica in self.replicas:
            contributions.apply(replica.parameters(), reduced)
        for optimizer in self.optimizers:
            optimizer.step()
        self._verify_sync()
        self._iteration += 1
        return DistributedIteration(
            loss=contributions.reduced_loss(),
            n_micro_batches=len(micro_batches),
            per_device_peaks=[
                d.peak_bytes for d in self.devices.devices
            ],
            sim_time_s=self.devices.sim_time_s,
            comm_time_s=comm_s,
        )

    def _verify_sync(self) -> None:
        """Replicas must stay bit-identical after each step."""
        reference = self.replicas[0].state_dict()
        for replica in self.replicas[1:]:
            state = replica.state_dict()
            for key, value in reference.items():
                if not np.array_equal(value, state[key]):
                    raise ReproError(
                        f"replica desynchronized at parameter {key}"
                    )
