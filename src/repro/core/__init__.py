"""Buffalo: the paper's primary contribution.

Components map one-to-one to the paper's §IV design:

* :mod:`fastblock` — accelerated block generation (§IV-E): CSR row
  slicing over the already-sampled subgraph, vectorized at node level.
* :mod:`estimator` — BucketMemEstimator and the redundancy-aware group
  estimator implementing Eq. 1–2 (§IV-D).
* :mod:`splitting` — SplitExplosionBucket (§IV-C).
* :mod:`grouping` — MemBalancedGrouping, Algorithm 4.
* :mod:`scheduler` — BuffaloScheduler, Algorithm 3.
* :mod:`microbatch` — micro-batch generation from bucket groups.
* :mod:`trainer` — Algorithm 2 training with gradient accumulation.
* :mod:`api` — the high-level :class:`BuffaloTrainer` facade.
"""

from repro.core.fastblock import generate_blocks_fast
from repro.core.estimator import (
    BucketMemEstimator,
    BucketProfile,
    redundancy_group_estimate,
)
from repro.core.splitting import split_explosion_bucket
from repro.core.grouping import BucketGroup, mem_balanced_grouping
from repro.core.scheduler import BuffaloScheduler, SchedulePlan
from repro.core.microbatch import MicroBatch, generate_micro_batches
from repro.core.trainer import (
    GradientContributions,
    MicroBatchTrainer,
    TrainResult,
)
from repro.core.symbolic import SymbolicResult, SymbolicTrainer
from repro.core.api import BuffaloTrainer
from repro.core.distributed import (
    DataParallelBuffaloTrainer,
    DistributedIteration,
)
from repro.core.split_parallel import (
    SplitIteration,
    SplitParallelBuffaloTrainer,
    SplitPlacement,
    ensure_group_count,
    partition_nodes,
    plan_placement,
)

__all__ = [
    "generate_blocks_fast",
    "BucketMemEstimator",
    "BucketProfile",
    "redundancy_group_estimate",
    "split_explosion_bucket",
    "BucketGroup",
    "mem_balanced_grouping",
    "BuffaloScheduler",
    "SchedulePlan",
    "MicroBatch",
    "generate_micro_batches",
    "MicroBatchTrainer",
    "TrainResult",
    "SymbolicTrainer",
    "SymbolicResult",
    "BuffaloTrainer",
    "DataParallelBuffaloTrainer",
    "DistributedIteration",
    "GradientContributions",
    "SplitParallelBuffaloTrainer",
    "SplitIteration",
    "SplitPlacement",
    "partition_nodes",
    "plan_placement",
    "ensure_group_count",
]
