"""BuffaloScheduler (paper Algorithm 3).

Searches the smallest ``K`` such that the output-layer buckets — with the
exploded cut-off bucket split into ``K`` micro-buckets — can be packed
into ``K`` bucket groups that each respect the GPU memory constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import INDEX_DTYPE
from repro.core.estimator import BucketMemEstimator
from repro.core.grouping import (
    BucketGroup,
    mem_balanced_grouping,
    refine_balance,
)
from repro.core.splitting import split_explosion_bucket
from repro.errors import SchedulingError
from repro.gnn.block import Block
from repro.gnn.bucketing import Bucket, bucketize_degrees, detect_explosion
from repro.gnn.footprint import ModelSpec
from repro.graph.sampling import SampledBatch
from repro.obs.metrics import SMALL_COUNT_BUCKETS, get_metrics
from repro.obs.trace import get_tracer


def group_input_nodes(blocks: list[Block], rows: np.ndarray) -> np.ndarray:
    """Batch-local input-layer node ids reachable from output ``rows``.

    Walks the batch-level block chain (input-most first) from the given
    output rows toward the input layer — the same reachability walk the
    memory estimator performs, but returning the concrete node ids
    instead of their count.  The result equals the ``src_nodes`` of the
    input-most block a micro-batch built from ``rows`` would carry, so
    the cross-group feature-reuse layer can compute input overlap
    *before* any micro-batch blocks are generated.
    """
    rows = np.unique(np.asarray(rows, dtype=INDEX_DTYPE))
    for block in reversed(blocks):
        degrees = block.indptr[rows + 1] - block.indptr[rows]
        if degrees.sum() > 0:
            starts = block.indptr[rows]
            total = int(degrees.sum())
            offsets = np.zeros(rows.size, dtype=INDEX_DTYPE)
            np.cumsum(degrees[:-1], out=offsets[1:])
            flat_pos = (
                np.repeat(starts - offsets, degrees)
                + np.arange(total, dtype=INDEX_DTYPE)
            )
            neighbor_positions = block.indices[flat_pos]
            rows = np.unique(np.concatenate([rows, neighbor_positions]))
    return blocks[0].src_nodes[rows]


@dataclass
class SchedulePlan:
    """The scheduler's output.

    Attributes:
        groups: bucket groups, one micro-batch each.
        k: number of groups.
        split_applied: whether the explosion bucket was split.
        buckets: the final output-layer bucket list (post-split).
        estimator: the estimator used (reused for reporting).
    """

    groups: list[BucketGroup]
    k: int
    split_applied: bool
    buckets: list[Bucket]
    estimator: BucketMemEstimator
    _input_sets: list[np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def estimated_bytes(self) -> list[float]:
        return [g.estimated_bytes for g in self.groups]

    def input_node_sets(self, blocks: list[Block]) -> list[np.ndarray]:
        """Per-group batch-local input-node ids, in schedule order.

        ``blocks`` is the *batch-level* chain the plan was scheduled
        from.  Results are cached on the plan (the sets are consulted
        both by the feature-reuse planner and by telemetry).
        """
        if self._input_sets is None:
            self._input_sets = [
                group_input_nodes(blocks, group.rows)
                for group in self.groups
            ]
        return self._input_sets


class BuffaloScheduler:
    """Plans bucket groups for a batch under a memory constraint.

    Args:
        model: the workload description (dims, depth, aggregator).
        memory_constraint: per-micro-batch device byte budget (``M_ctr``).
        cutoff: the sampling size / cut-off degree ``F`` of the output
            layer.
        clustering_coefficient: the graph's ``C`` (offline statistic).
        k_max: search bound on the number of micro-batches.
        split_granularity: when set, any bucket whose standalone
            estimate exceeds this fraction of the memory constraint is
            split into even micro-buckets before grouping, so the bin
            packer works with fine granules and groups balance tightly
            (the paper's 4–6% spread needs "portions of large-sized
            degree-buckets", §IV-A).  ``None`` restricts splitting to
            the explosion bucket exactly as Algorithm 3 is written.
    """

    def __init__(
        self,
        model: ModelSpec,
        memory_constraint: float,
        cutoff: int | None,
        clustering_coefficient: float,
        *,
        k_max: int = 128,
        split_granularity: float | None = 0.25,
    ) -> None:
        if memory_constraint <= 0:
            raise SchedulingError(
                f"memory constraint must be positive, got {memory_constraint}"
            )
        self.model = model
        self.memory_constraint = float(memory_constraint)
        self.cutoff = None if cutoff is None else int(cutoff)
        self.clustering = float(clustering_coefficient)
        self.k_max = int(k_max)
        self.split_granularity = split_granularity

    def schedule(
        self, batch: SampledBatch, blocks: list[Block]
    ) -> SchedulePlan:
        """Run Algorithm 3 on a sampled batch's block chain.

        Raises:
            SchedulingError: when no feasible plan exists within
                ``k_max`` groups (a single bucket's dependencies exceed
                the budget).
        """
        from repro.core.estimator import redundancy_group_estimate

        tracer = get_tracer()
        with tracer.span("schedule.bucketize") as span:
            base_buckets = bucketize_degrees(
                blocks[-1].degrees, self.cutoff
            )
            estimator = BucketMemEstimator(
                blocks, self.model, self.clustering
            )
            explosion = detect_explosion(base_buckets, self.cutoff)
            span.set_attrs(
                {
                    "n_buckets": len(base_buckets),
                    "explosion": explosion is not None,
                }
            )

        # Fast-path: everything fits in one group (Algorithm 3's K = 1
        # special case — the original subgraph is the micro-batch).
        discounted_total = redundancy_group_estimate(
            estimator, base_buckets
        )
        if discounted_total <= self.memory_constraint:
            success, groups = mem_balanced_grouping(
                base_buckets, 1, self.memory_constraint, estimator
            )
            if success:
                return self._finish_plan(
                    SchedulePlan(
                        groups=groups,
                        k=1,
                        split_applied=False,
                        buckets=base_buckets,
                        estimator=estimator,
                    )
                )

        # Split once, K-independently: the explosion bucket (and any
        # other bucket) is cut into granules no larger than
        # ``split_granularity`` of the constraint.  All granule profiles
        # are computed in one batched walk, making each K iteration of
        # the search a pure packing problem (microseconds).  This
        # replaces Algorithm 3's per-K re-split with an equivalent but
        # far cheaper schedule: the packer can always reassemble K-split
        # groups from finer granules.
        granularity = (
            self.split_granularity
            if self.split_granularity is not None
            else 1.0
        )
        threshold = granularity * self.memory_constraint
        with tracer.span("schedule.split") as span:
            buckets, split_applied = self._split_oversize(
                base_buckets, estimator, threshold
            )
            if explosion is not None and not split_applied:
                # Tight corner: the explosion bucket fits the threshold
                # but K > 1 is needed; Algorithm 3 still splits it for
                # balance.
                buckets = [b for b in base_buckets if b is not explosion]
                buckets.extend(split_explosion_bucket(explosion, 2))
                split_applied = True
            span.set_attrs(
                {"n_buckets": len(buckets), "split": split_applied}
            )

        # Lower bound: any K-way grouping's largest group is at least
        # the discounted total divided by K.
        k = max(2, int(discounted_total / self.memory_constraint))
        with tracer.span("schedule.k_search") as span:
            attempts = 0
            while k <= self.k_max:
                attempts += 1
                success, groups = mem_balanced_grouping(
                    buckets, k, self.memory_constraint, estimator
                )
                if success:
                    if 1 < len(groups) <= 32:
                        groups = refine_balance(groups, estimator)
                    span.set_attrs(
                        {"attempts": attempts, "k": len(groups)}
                    )
                    return self._finish_plan(
                        SchedulePlan(
                            groups=groups,
                            k=len(groups),
                            split_applied=split_applied,
                            buckets=buckets,
                            estimator=estimator,
                        )
                    )
                # Adaptive step: when the worst group overflows the
                # budget by ratio r, at least ~r-times more groups are
                # needed.
                overflow = max(g.estimated_bytes for g in groups) / (
                    self.memory_constraint
                )
                lower_bound = int(
                    sum(g.estimated_bytes for g in groups)
                    / self.memory_constraint
                )
                k = max(k + 1, int(k * min(overflow, 1.5)), lower_bound)
            span.set_attr("attempts", attempts)

        raise SchedulingError(
            f"no feasible schedule within k_max={self.k_max} groups for "
            f"memory constraint {self.memory_constraint / 2**30:.2f} GiB"
        )

    def _finish_plan(self, plan: SchedulePlan) -> SchedulePlan:
        """Record schedule-level metrics before handing the plan out."""
        metrics = get_metrics()
        metrics.counter(
            "buffalo.schedules", help="successful scheduler runs"
        ).inc()
        metrics.histogram(
            "buffalo.groups_per_schedule",
            SMALL_COUNT_BUCKETS,
            help="bucket groups (K) per successful schedule",
        ).observe(plan.k)
        return plan

    def _split_oversize(
        self,
        buckets: list[Bucket],
        estimator: BucketMemEstimator,
        threshold: float,
    ) -> tuple[list[Bucket], bool]:
        """Split any bucket whose standalone estimate exceeds ``threshold``.

        Algorithm 3 splits only the explosion (cut-off) bucket.  This
        extension additionally splits (a) during the K search, buckets
        exceeding the full constraint — otherwise no K is feasible under
        very tight budgets — and (b) in the finalize pass, buckets above
        the granularity threshold so the bin packer balances groups
        tightly ("portions of large-sized degree-buckets", paper §IV-A).
        Iterates because shared dependencies make split-part memory
        sub-linear.
        """
        split_any = False
        for _ in range(4):
            estimator.profile_many(buckets)
            refined: list[Bucket] = []
            changed = False
            for bucket in buckets:
                estimate = estimator.estimate(bucket)
                if estimate > threshold and bucket.volume > 1:
                    n_parts = min(
                        int(estimate / threshold) + 1,
                        bucket.volume,
                    )
                    refined.extend(split_explosion_bucket(bucket, n_parts))
                    changed = True
                    split_any = True
                else:
                    refined.append(bucket)
            buckets = refined
            if not changed:
                break
        return buckets, split_any
