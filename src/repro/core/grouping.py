"""MemBalancedGrouping (paper Algorithm 4).

Treats buckets as items of a load-balanced bin-packing problem whose item
weight *and* value are the estimated memory, and solves it with the
greedy longest-processing-time heuristic: sort buckets by standalone
memory descending, place each into the group with the lowest current
redundancy-aware memory estimate.  Returns failure when any resulting
group exceeds the memory constraint, in which case the scheduler retries
with ``K + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.estimator import (
    BucketMemEstimator,
    redundancy_group_estimate,
)
from repro.errors import SchedulingError
from repro.gnn.bucketing import Bucket


@dataclass
class BucketGroup:
    """A scheduled group of buckets forming one micro-batch.

    Attributes:
        buckets: member buckets (micro-buckets and/or whole buckets).
        estimated_bytes: the redundancy-aware memory estimate (Eq. 2).
    """

    buckets: list[Bucket] = field(default_factory=list)
    estimated_bytes: float = 0.0

    @property
    def rows(self) -> np.ndarray:
        """All output rows of the group (sorted)."""
        if not self.buckets:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate([b.rows for b in self.buckets]))

    @property
    def n_output(self) -> int:
        return sum(b.volume for b in self.buckets)

    def __repr__(self) -> str:
        degrees = sorted(b.degree for b in self.buckets)
        return (
            f"BucketGroup(n_buckets={len(self.buckets)}, "
            f"n_output={self.n_output}, degrees={degrees}, "
            f"est={self.estimated_bytes / 2**20:.1f}MiB)"
        )


def mem_balanced_grouping(
    buckets: list[Bucket],
    k: int,
    memory_constraint: float,
    estimator: BucketMemEstimator,
) -> tuple[bool, list[BucketGroup]]:
    """Greedily pack ``buckets`` into ``k`` memory-balanced groups.

    Args:
        buckets: all buckets of the output layer (after any splitting).
        k: number of groups.
        memory_constraint: per-group byte budget (``M_ctr``).
        estimator: the batch's :class:`BucketMemEstimator`.

    Returns:
        ``(success, groups)``; on failure the groups reflect the
        attempted (over-budget) packing, which callers may inspect.
    """
    if k < 1:
        raise SchedulingError(f"group count must be >= 1, got {k}")
    if not buckets:
        raise SchedulingError("cannot group an empty bucket list")

    # Eq. 2 makes a group's estimate a plain sum of per-bucket constants
    # (M_est * R for multi-bucket groups, M_est for singletons), so the
    # packing loop maintains estimates incrementally — O(n * k) instead
    # of re-estimating whole groups per insertion.
    standalone: dict[int, float] = {}
    discounted: dict[int, float] = {}
    estimator.profile_many(buckets)  # one segmented walk warms the cache
    for b in buckets:
        profile = estimator.profile(b)
        m_est = estimator.estimate_from_profile(profile)
        standalone[id(b)] = m_est
        discounted[id(b)] = m_est * estimator.grouping_ratio(profile)
    order = sorted(buckets, key=lambda b: standalone[id(b)], reverse=True)

    groups = [BucketGroup() for _ in range(k)]
    for bucket in order:
        target = min(groups, key=lambda g: g.estimated_bytes)
        target.buckets.append(bucket)
        if len(target.buckets) == 1:
            target.estimated_bytes = standalone[id(bucket)]
        elif len(target.buckets) == 2:
            target.estimated_bytes = sum(
                discounted[id(b)] for b in target.buckets
            )
        else:
            target.estimated_bytes += discounted[id(bucket)]

    groups = [g for g in groups if g.buckets]
    success = all(g.estimated_bytes <= memory_constraint for g in groups)
    return success, groups


def first_fit_decreasing(
    buckets: list[Bucket],
    memory_constraint: float,
    estimator: BucketMemEstimator,
) -> list[BucketGroup]:
    """Classic FFD bin packing (ablation baseline for Algorithm 4).

    Minimizes the number of bins without balancing them: each bucket
    (largest first) goes into the first group it fits, opening a new
    group when none fits.  Compared against the LPT packing in
    ``benchmarks/test_ablation_grouping.py`` — FFD uses similar K but
    leaves the last bins underfilled (poor balance).
    """
    if not buckets:
        raise SchedulingError("cannot group an empty bucket list")
    pairs = []
    for b in buckets:
        profile = estimator.profile(b)
        m_est = estimator.estimate_from_profile(profile)
        pairs.append((b, m_est, m_est * estimator.grouping_ratio(profile)))
    pairs.sort(key=lambda t: t[1], reverse=True)

    groups: list[BucketGroup] = []
    discounted_sums: list[float] = []
    for bucket, m_est, m_disc in pairs:
        placed = False
        for i, group in enumerate(groups):
            projected = (
                discounted_sums[i] + m_disc
                if group.buckets
                else m_est
            )
            if projected <= memory_constraint:
                group.buckets.append(bucket)
                discounted_sums[i] += m_disc
                group.estimated_bytes = (
                    m_est
                    if len(group.buckets) == 1
                    else discounted_sums[i]
                )
                placed = True
                break
        if not placed:
            groups.append(
                BucketGroup(buckets=[bucket], estimated_bytes=m_est)
            )
            discounted_sums.append(m_disc)
    return groups


def random_grouping(
    buckets: list[Bucket],
    k: int,
    estimator: BucketMemEstimator,
    seed: int = 0,
) -> list[BucketGroup]:
    """Uniform random assignment into ``k`` groups (ablation baseline)."""
    import numpy as _np

    if not buckets:
        raise SchedulingError("cannot group an empty bucket list")
    rng = _np.random.default_rng(seed)
    assignment = rng.integers(0, k, size=len(buckets))
    groups = [BucketGroup() for _ in range(k)]
    for bucket, g in zip(buckets, assignment):
        groups[g].buckets.append(bucket)
    groups = [g for g in groups if g.buckets]
    for group in groups:
        group.estimated_bytes = redundancy_group_estimate(
            estimator, group.buckets
        )
    return groups


def exact_group_bytes(
    estimator: BucketMemEstimator, group: BucketGroup
) -> float:
    """Exact memory of a group's micro-batch: one merged-rows profile.

    Unlike Eq. 2 this walks the *union* of the members' dependency
    cones, so shared inputs are deduplicated exactly.  It is what Eq. 2
    approximates; the load-balance refinement uses it because a single
    walk per group is affordable once K is fixed.
    """
    merged = Bucket(degree=0, rows=group.rows)
    return estimator.estimate(merged)


def refine_balance(
    groups: list[BucketGroup],
    estimator: BucketMemEstimator,
    *,
    max_moves: int = 8,
) -> list[BucketGroup]:
    """Greedy post-pass reducing the max-min spread of exact group memory.

    Repeatedly moves the smallest bucket of the heaviest group to the
    lightest group, keeping a move only when it lowers the maximum exact
    group memory.  Mutates and returns ``groups`` (their
    ``estimated_bytes`` are updated to exact values).
    """
    def _merged(buckets_subset: list[Bucket]) -> Bucket:
        return Bucket(
            degree=0,
            rows=np.sort(
                np.concatenate([b.rows for b in buckets_subset])
            ),
        )

    if len(groups) < 2:
        profiles = estimator.profile_many([_merged(g.buckets) for g in groups])
        for g, p in zip(groups, profiles):
            g.estimated_bytes = estimator.estimate_from_profile(p)
        return groups

    group_profiles = estimator.profile_many(
        [_merged(g.buckets) for g in groups]
    )
    exact = [
        estimator.estimate_from_profile(p) for p in group_profiles
    ]
    for _ in range(max_moves):
        hi = max(range(len(groups)), key=lambda i: exact[i])
        lo = min(range(len(groups)), key=lambda i: exact[i])
        if hi == lo or len(groups[hi].buckets) <= 1:
            break
        # Evaluate the lightest few buckets of the heavy group as move
        # candidates (all hi'/lo' variants profiled in one segmented
        # walk) and take the one lowering the pair maximum most.
        candidates = sorted(
            groups[hi].buckets, key=lambda b: estimator.estimate(b)
        )[:4]
        probe_buckets: list[Bucket] = []
        for mover in candidates:
            hi_rest = [b for b in groups[hi].buckets if b is not mover]
            probe_buckets.append(_merged(hi_rest))
            probe_buckets.append(_merged(groups[lo].buckets + [mover]))
        probes = estimator.profile_many(probe_buckets)

        best_move = None
        best_pair_max = exact[hi]
        for idx, mover in enumerate(candidates):
            new_hi = estimator.estimate_from_profile(probes[2 * idx])
            new_lo = estimator.estimate_from_profile(probes[2 * idx + 1])
            pair_max = max(new_hi, new_lo)
            if pair_max < best_pair_max - 1e-9:
                best_move = (mover, new_hi, new_lo)
                best_pair_max = pair_max
        if best_move is None:
            break
        mover, new_hi, new_lo = best_move
        groups[hi].buckets.remove(mover)
        groups[lo].buckets.append(mover)
        exact[hi], exact[lo] = new_hi, new_lo
    for g, e in zip(groups, exact):
        g.estimated_bytes = e
    return groups
