"""Symbolic execution: replay an iteration's memory/compute without arrays.

The paper's largest configurations (fanout 800, hidden 1024, 24 GB
budgets) cannot run concretely on a CPU box, but their *memory events*
can: this module replays the exact allocation/kernel sequence of
:class:`~repro.core.trainer.MicroBatchTrainer` against a
:class:`~repro.device.SimulatedGPU` using the calibrated analytic
footprints (validated within ±20% of the concrete ledger by
``tests/gnn/test_footprint.py``).  OOM semantics are identical: an
over-budget micro-batch raises
:class:`~repro.errors.DeviceOutOfMemoryError` from the device ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.device import SimulatedGPU
from repro.device.profiler import Profiler
from repro.errors import DeviceError
from repro.gnn.block import Block
from repro.gnn.footprint import (
    ModelSpec,
    input_feature_bytes,
    layer_footprint,
    model_layer_footprints,
    training_dram_bytes,
    training_flops,
)


@dataclass
class SymbolicResult:
    """Outcome of one symbolic iteration."""

    peak_bytes: int
    sim_time_s: float
    n_micro_batches: int
    profiler: Profiler


class SymbolicTrainer:
    """Replays training iterations as alloc/kernel/free event sequences.

    Args:
        spec: the workload description.
        device: the budgeted simulated GPU.
        padded: model PyG-style padded aggregation instead of bucketed
            (every destination row is charged at the block's max degree).
    """

    def __init__(
        self,
        spec: ModelSpec,
        device: SimulatedGPU,
        *,
        padded: bool = False,
    ) -> None:
        self.spec = spec
        self.device = device
        self.padded = padded
        # Parameters + their gradients persist across the run.
        self._param_handle = device.alloc(2 * spec.param_bytes())

    def close(self) -> None:
        """Release the persistent parameter allocation."""
        if self._param_handle is not None:
            self.device.free(self._param_handle)
            self._param_handle = None

    # ------------------------------------------------------------------
    def _layer_footprints(self, blocks: list[Block]):
        if not self.padded:
            return model_layer_footprints(blocks, self.spec)
        footprints = []
        for i, (block, (f_in, f_out)) in enumerate(
            zip(blocks, self.spec.layer_dims())
        ):
            max_d = int(block.degrees.max(initial=0))
            histogram = {max_d: block.n_dst} if max_d else {0: block.n_dst}
            # Padded aggregation materializes the full (n_dst, max_d, f)
            # tensor plus its masked product, so the gather is charged at
            # every layer (input_requires_grad=True keeps it in the
            # formula even for the leaf layer).
            footprints.append(
                layer_footprint(
                    histogram,
                    f_in,
                    f_out,
                    self.spec.aggregator,
                    self.spec.hidden_dim,
                    input_requires_grad=True,
                )
            )
        return footprints

    def iterate(
        self,
        micro_batch_blocks: list[list[Block]],
        *,
        profiler: Profiler | None = None,
    ) -> SymbolicResult:
        """Replay one iteration over the given micro-batch block chains.

        Raises:
            DeviceOutOfMemoryError: when any micro-batch's working set
                exceeds the device budget.
        """
        if not micro_batch_blocks:
            raise DeviceError("symbolic iteration needs at least one micro-batch")
        profiler = profiler or Profiler()
        self.device.reset_peak()
        for blocks in micro_batch_blocks:
            input_bytes = input_feature_bytes(
                blocks[0].n_src, self.spec.in_dim
            )
            profiler.add_sim("data_loading", self.device.load(input_bytes))
            footprints = self._layer_footprints(blocks)
            working = input_bytes + sum(
                fp.activation_bytes + fp.grad_bytes for fp in footprints
            )
            handle = self.device.alloc(int(working))
            duration = self.device.run_kernel(
                training_flops(footprints),
                training_dram_bytes(footprints),
            )
            profiler.add_sim("gpu_compute", duration)
            self.device.free(handle)
        return SymbolicResult(
            peak_bytes=self.device.peak_bytes,
            sim_time_s=self.device.sim_time_s,
            n_micro_batches=len(micro_batch_blocks),
            profiler=profiler,
        )
