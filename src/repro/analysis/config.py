"""Lint configuration: built-in defaults, overridable in ``pyproject.toml``.

The ``[tool.repro.lint]`` table controls what gets linted::

    [tool.repro.lint]
    paths = ["src/repro"]           # roots to walk (repo-relative)
    exclude = ["src/repro/bench"]   # pruned subtrees/files
    select = []                     # empty = every registered rule
    baseline = "lint-baseline.json" # grandfathered findings
    cache = ".repro-lint-cache.json"

    [tool.repro.lint.scopes]        # per-rule path scopes (override
    dtype-promotion = ["src/repro/core", "src/repro/gnn"]  # rule defaults)

Rule *scopes* are path prefixes (or exact files) a rule applies to;
each rule ships a default scope encoding which Buffalo invariant it
protects (see ``docs/analysis.md``), and the table above can widen or
narrow it without touching code.

``tomllib`` ships with Python 3.11+; on 3.10 (no tomllib, no vendored
parser — this repo adds no dependencies) the built-in defaults are used
and a note is attached to :attr:`LintConfig.notes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintConfig", "load_config", "DEFAULT_BASELINE", "DEFAULT_CACHE"]

DEFAULT_PATHS = ("src/repro",)
DEFAULT_BASELINE = "lint-baseline.json"
DEFAULT_CACHE = ".repro-lint-cache.json"


@dataclass
class LintConfig:
    """Resolved lint settings for one repository root."""

    root: Path
    paths: tuple[str, ...] = DEFAULT_PATHS
    exclude: tuple[str, ...] = ()
    select: tuple[str, ...] = ()
    baseline: str = DEFAULT_BASELINE
    cache: str = DEFAULT_CACHE
    scopes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    notes: tuple[str, ...] = ()

    def scope_for(self, rule_name: str, default: tuple[str, ...]) -> tuple[str, ...]:
        """Configured scope of ``rule_name``, or the rule's default."""
        return self.scopes.get(rule_name, default)

    def in_scope(self, relpath: str, prefixes: tuple[str, ...]) -> bool:
        """True when ``relpath`` is under any of ``prefixes``."""
        return any(
            relpath == p or relpath.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def excluded(self, relpath: str) -> bool:
        return self.in_scope(relpath, self.exclude)

    def fingerprint(self) -> str:
        """Stable hash of the settings that change what the lint *means*.

        Part of every baseline entry's fingerprint (see
        :mod:`repro.analysis.baseline`): editing ``[tool.repro.lint]``
        — paths, excludes, selection, or per-rule scopes — invalidates
        grandfathered suppressions instead of silently hiding findings
        the new configuration would surface.  ``root`` and ``notes`` are
        deliberately excluded (machine-local, not semantic); so are the
        baseline/cache *filenames*.
        """
        import hashlib

        digest = hashlib.sha256()
        for part in (
            ",".join(self.paths),
            ",".join(self.exclude),
            ",".join(self.select),
            ";".join(
                f"{rule}={','.join(paths)}"
                for rule, paths in sorted(self.scopes.items())
            ),
        ):
            digest.update(part.encode())
            digest.update(b"\x00")
        return digest.hexdigest()


def _as_str_tuple(value, context: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(v, str) for v in value
    ):
        raise ValueError(f"{context} must be a list of strings, got {value!r}")
    return tuple(value)


def load_config(root: str | Path) -> LintConfig:
    """Read ``[tool.repro.lint]`` from ``<root>/pyproject.toml``.

    Missing file/table/interpreter-TOML-support all fall back to the
    defaults; malformed values raise ``ValueError`` (a misconfigured
    gate must fail loudly, not lint the wrong tree silently).
    """
    root = Path(root)
    config = LintConfig(root=root)
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python 3.10 fallback
        config.notes = (
            "tomllib unavailable (Python < 3.11); using built-in defaults",
        )
        return config
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro", {}).get("lint", {})
    if not table:
        return config
    if "paths" in table:
        config.paths = _as_str_tuple(table["paths"], "tool.repro.lint.paths")
    if "exclude" in table:
        config.exclude = _as_str_tuple(
            table["exclude"], "tool.repro.lint.exclude"
        )
    if "select" in table:
        config.select = _as_str_tuple(table["select"], "tool.repro.lint.select")
    if "baseline" in table:
        config.baseline = str(table["baseline"])
    if "cache" in table:
        config.cache = str(table["cache"])
    scopes = table.get("scopes", {})
    if scopes:
        if not isinstance(scopes, dict):
            raise ValueError("tool.repro.lint.scopes must be a table")
        config.scopes = {
            rule: _as_str_tuple(paths, f"tool.repro.lint.scopes.{rule}")
            for rule, paths in scopes.items()
        }
    return config
