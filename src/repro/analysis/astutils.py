"""Shared AST helpers: import-alias resolution and node utilities.

The domain rules all need the same primitive: "does this expression
refer to ``numpy.random.default_rng`` / ``time.time`` / ``DatasetError``
regardless of how the module imported it?"  :class:`ImportMap` records
every binding an ``import`` statement creates and resolves attribute
chains back to canonical dotted names, so ``_np.random.default_rng``,
``np.random.default_rng``, and ``from numpy.random import default_rng``
all resolve identically.
"""

from __future__ import annotations

import ast

__all__ = ["ImportMap", "dotted_name", "is_self_attr", "walk_parents"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is ``self.attr``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class ImportMap:
    """Local name -> canonical dotted path, built from import statements.

    * ``import numpy as np``                → ``np -> numpy``
    * ``import numpy.random``              → ``numpy -> numpy``
    * ``from numpy import random``         → ``random -> numpy.random``
    * ``from numpy.random import default_rng as rng``
                                           → ``rng -> numpy.random.default_rng``

    Relative imports resolve against ``package`` when given (e.g.
    ``from .layout import load_mapped`` inside ``repro.store`` becomes
    ``repro.store.layout.load_mapped``).
    """

    def __init__(self, tree: ast.AST, package: str = "") -> None:
        self.aliases: dict[str, str] = {}
        self.package = package
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # `import a.b.c` binds `a` to the root module.
                        root = alias.name.split(".", 1)[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level:
                    parts = self.package.split(".") if self.package else []
                    parts = parts[: len(parts) - (node.level - 1)]
                    if module:
                        parts.append(module)
                    module = ".".join(parts)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    full = f"{module}.{alias.name}" if module else alias.name
                    self.aliases[local] = full

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted path of an expression, if import-rooted."""
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base


def walk_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent map for one tree (single O(n) walk)."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents
