"""Whole-program concurrency analysis over the lint file set.

This module builds a project model (classes, methods, nested closures,
lock attributes, attribute types) from the parsed trees of every
in-scope file, links call sites to callees through a light type
inference (constructor assignments, parameter/attribute annotations,
``list[...]`` element propagation), and then solves three
interprocedural problems the per-file ``lock-discipline`` rule cannot
see:

* **lock-order** — the global lock graph: an edge ``A -> B`` means some
  path acquires ``B`` while (possibly transitively) holding ``A``.
  Cycles are potential deadlocks.  Edges use *may* held-sets (union over
  call paths) so no interleaving is missed.
* **blocking-under-lock** — queue waits, ``Condition.wait``, file or
  memmap I/O, thread joins, semaphore acquires, and kernel forwards
  executed while a lock is held, directly or via a callee that blocks.
  Uses *must* held-sets (intersection over call sites) so a finding is
  only raised when the lock is guaranteed held.  ``Condition.wait`` on a
  condition wrapping the held lock is legal (the wait releases it) and
  exempt.
* **thread-escape** — classes with a method reachable from a
  ``threading.Thread`` target or executor submission are *shared*; every
  post-construction write to their attributes must either hold one of
  the class's own locks or be covered by a declared guard.
* **lock-contract** — violations of the declared vocabulary from
  :mod:`repro.analysis.contracts`: a ``@locks_required`` callee invoked
  without the lock, a ``# guarded-by: <lock>`` attribute written without
  it, or a guard naming a non-existent lock.

Deliberate limits (kept so the pass stays false-positive-free):
return-type inference is skipped (``get_metrics().counter(...)`` stays
unresolved — the obs layer is GIL-tolerant by design), ``.acquire()``
call form records a lock-graph edge but not a held region (use ``with``
for held tracking), and lambdas are opaque.
"""

from __future__ import annotations

import ast
import re
from collections import defaultdict
from dataclasses import dataclass, field

from repro.analysis.astutils import ImportMap, dotted_name, is_self_attr

__all__ = [
    "ConcurrencyFinding",
    "ProjectModel",
    "build_model",
    "analyze",
    "analyze_project",
    "GUARD_RE",
]

# Trailing declaration on the line(s) of an attribute's assignment.
GUARD_RE = re.compile(r"#\s*guarded-by:\s*(?P<guard>[^#]+?)\s*$")

#: Constructors that create synchronization objects, by kind.
_SYNC_CTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "condition",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "threading.Event": "event",
}

#: Kinds that provide mutual exclusion (participate in held-sets).
_MUTEX_KINDS = frozenset({"lock", "rlock", "condition"})

#: Directly blocking callables by canonical dotted name.
_BLOCKING_NAME_CALLS = {
    "time.sleep": "time.sleep",
    "open": "file I/O (open)",
    "io.open": "file I/O (open)",
    "numpy.load": "file I/O (numpy.load)",
    "numpy.save": "file I/O (numpy.save)",
    "numpy.memmap": "memmap I/O (numpy.memmap)",
    "numpy.lib.format.open_memmap": "memmap I/O (open_memmap)",
    "socket.create_connection": "network I/O",
    "subprocess.run": "subprocess wait",
    "subprocess.check_call": "subprocess wait",
    "subprocess.check_output": "subprocess wait",
}

#: Blocking methods keyed on (resolved receiver type, method name).
_BLOCKING_TYPED_METHODS = {
    ("queue.Queue", "get"): "queue wait (Queue.get)",
    ("queue.Queue", "put"): "queue wait (Queue.put)",
    ("queue.Queue", "join"): "queue wait (Queue.join)",
    ("queue.SimpleQueue", "get"): "queue wait (SimpleQueue.get)",
    ("queue.SimpleQueue", "put"): "queue wait (SimpleQueue.put)",
    ("threading.Thread", "join"): "thread join",
    ("threading.Event", "wait"): "event wait",
    ("threading.Condition", "wait"): "condition wait",
    ("threading.Condition", "wait_for"): "condition wait",
    ("threading.Semaphore", "acquire"): "semaphore acquire",
    ("threading.BoundedSemaphore", "acquire"): "semaphore acquire",
    ("concurrent.futures.Future", "result"): "future wait",
    ("concurrent.futures.ThreadPoolExecutor", "shutdown"): "executor shutdown",
    ("pathlib.Path", "read_bytes"): "file I/O (Path.read_bytes)",
    ("pathlib.Path", "read_text"): "file I/O (Path.read_text)",
    ("pathlib.Path", "write_bytes"): "file I/O (Path.write_bytes)",
    ("pathlib.Path", "write_text"): "file I/O (Path.write_text)",
}

#: Container methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "discard",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "add",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
    }
)

_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__"})


# --------------------------------------------------------------------------
# Extraction data model
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CalleeRef:
    """Unresolved reference to a call target.

    kind: ``self`` (self.m()), ``attr`` (self.base.m()), ``var``
    (local.m()), or ``name`` (bare/dotted callable).
    """

    kind: str
    base: str
    name: str


@dataclass
class CallEvent:
    ref: CalleeRef
    line: int
    col: int
    held: tuple[str, ...]


@dataclass
class AcquireEvent:
    lock: str
    line: int
    col: int
    held: tuple[str, ...]


@dataclass
class BlockEvent:
    what: str
    line: int
    col: int
    held: tuple[str, ...]
    via_cond: str | None = None


@dataclass
class MutEvent:
    obj: str  # "" for self.attr, else the self-attribute holding the object
    attr: str
    line: int
    col: int
    held: tuple[str, ...]


@dataclass
class SpawnEvent:
    ref: CalleeRef
    line: int
    col: int
    kind: str  # "thread" | "executor"


@dataclass
class FunctionModel:
    qualname: str
    module: str
    relpath: str
    cls: str | None
    name: str
    lineno: int
    calls: list[CallEvent] = field(default_factory=list)
    acquires: list[AcquireEvent] = field(default_factory=list)
    blocks: list[BlockEvent] = field(default_factory=list)
    muts: list[MutEvent] = field(default_factory=list)
    spawns: list[SpawnEvent] = field(default_factory=list)
    locks_required: tuple[str, ...] | None = None
    param_types: dict[str, str] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)
    nested: dict[str, "FunctionModel"] = field(default_factory=dict)
    parent: "FunctionModel | None" = None


@dataclass(frozen=True)
class Guard:
    text: str
    token: str | None  # identifier head, candidate lock-attr name
    line: int


@dataclass
class ClassModel:
    qualname: str
    module: str
    relpath: str
    name: str
    lineno: int
    locks: dict[str, str] = field(default_factory=dict)  # attr -> kind
    cond_wraps: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    guards: dict[str, Guard] = field(default_factory=dict)
    methods: dict[str, FunctionModel] = field(default_factory=dict)

    def mutex_quals(self) -> set[str]:
        return {
            f"{self.qualname}.{attr}"
            for attr, kind in self.locks.items()
            if kind in _MUTEX_KINDS
        }


@dataclass
class ModuleModel:
    module: str
    relpath: str
    classes: dict[str, ClassModel] = field(default_factory=dict)
    functions: dict[str, FunctionModel] = field(default_factory=dict)


@dataclass(frozen=True)
class ConcurrencyFinding:
    rule: str  # lock-order | blocking-under-lock | thread-escape | lock-contract
    path: str
    line: int
    col: int
    message: str


# --------------------------------------------------------------------------
# Type expression helpers
# --------------------------------------------------------------------------


def _module_name(relpath: str) -> str:
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else relpath.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _type_name(expr: ast.AST, imports: ImportMap, module: str) -> str | None:
    """Canonical type string for a Name/Attribute chain."""
    resolved = imports.resolve(expr)
    if resolved is not None:
        return resolved
    if isinstance(expr, ast.Name):
        return f"{module}.{expr.id}"  # module-local class
    return None


def _ann_type(expr: ast.AST | None, imports: ImportMap, module: str) -> str | None:
    """Type string for an annotation; Optional/| None stripped,
    ``list[X]`` preserved as ``list:X`` markers, everything else None."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            expr = ast.parse(expr.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return _type_name(expr, imports, module)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        left = _ann_type(expr.left, imports, module)
        right = _ann_type(expr.right, imports, module)
        if left and right and left != right:
            return None
        return left or right
    if isinstance(expr, ast.Subscript):
        base = dotted_name(expr.value) or ""
        head = base.rsplit(".", 1)[-1]
        if head == "Optional":
            return _ann_type(expr.slice, imports, module)
        if head in ("list", "List", "Sequence"):
            inner = _ann_type(expr.slice, imports, module)
            return f"list:{inner}" if inner else None
        return None
    if isinstance(expr, ast.Constant) and expr.value is None:
        return None
    return None


def _value_type(expr: ast.AST, imports: ImportMap, module: str) -> str | None:
    """Type string for an assigned value: constructor calls and
    ``X() if c else x`` ternaries; bare reads stay untyped."""
    if isinstance(expr, ast.Call):
        return _type_name(expr.func, imports, module)
    if isinstance(expr, ast.IfExp):
        body = _value_type(expr.body, imports, module)
        orelse = _value_type(expr.orelse, imports, module)
        return body or orelse
    return None


def _guard_token(text: str) -> str | None:
    head = text.split("(")[0].strip()
    if head.startswith("self."):
        head = head[len("self."):]
    return head if head.isidentifier() else None


# --------------------------------------------------------------------------
# Per-function scanner
# --------------------------------------------------------------------------


class _FnScanner(ast.NodeVisitor):
    def __init__(
        self,
        fn: FunctionModel,
        cls: ClassModel | None,
        imports: ImportMap,
    ) -> None:
        self.fn = fn
        self.cls = cls
        self.imports = imports
        self.held: list[str] = []

    # -- helpers ---------------------------------------------------------

    def _snap(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.held))

    def _var_type(self, name: str) -> str | None:
        fn: FunctionModel | None = self.fn
        while fn is not None:
            if name in fn.local_types:
                return fn.local_types[name]
            if name in fn.param_types:
                return fn.param_types[name]
            fn = fn.parent
        return None

    def _sync_kind(self, attr: str) -> str | None:
        return self.cls.locks.get(attr) if self.cls else None

    def _callee_ref(self, func: ast.AST) -> CalleeRef | None:
        if isinstance(func, ast.Name):
            resolved = self.imports.resolve(func)
            return CalleeRef("name", "", resolved or func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                return CalleeRef("self", "", func.attr)
            inner = is_self_attr(value)
            if inner is not None:
                return CalleeRef("attr", inner, func.attr)
            if isinstance(value, ast.Name):
                return CalleeRef("var", value.id, func.attr)
            resolved = self.imports.resolve(func)
            if resolved is not None:
                return CalleeRef("name", "", resolved)
        return None

    def _target_ref(self, expr: ast.AST) -> CalleeRef | None:
        """A callable *reference* (thread target / submitted fn)."""
        attr = is_self_attr(expr)
        if attr is not None:
            return CalleeRef("self", "", attr)
        if isinstance(expr, ast.Name):
            return CalleeRef("name", "", expr.id)
        inner = is_self_attr(getattr(expr, "value", None))
        if isinstance(expr, ast.Attribute) and inner is not None:
            return CalleeRef("attr", inner, expr.attr)
        return None

    def _record_mut(self, target: ast.AST, line: int, col: int) -> None:
        attr = is_self_attr(target)
        if attr is not None:
            self.fn.muts.append(MutEvent("", attr, line, col, self._snap()))
            return
        if isinstance(target, ast.Attribute):
            obj = is_self_attr(target.value)
            if obj is not None:
                self.fn.muts.append(
                    MutEvent(obj, target.attr, line, col, self._snap())
                )

    def _record_targets(self, node: ast.AST) -> None:
        line = getattr(node, "lineno", self.fn.lineno)
        col = getattr(node, "col_offset", 0)
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self._record_targets(elt)
        elif isinstance(node, ast.Starred):
            self._record_targets(node.value)
        elif isinstance(node, ast.Subscript):
            self._record_mut(node.value, line, col)
        elif isinstance(node, ast.Attribute):
            self._record_mut(node, line, col)

    # -- statements ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        child = _scan_function(
            node,
            cls=self.cls,
            imports=self.imports,
            module=self.fn.module,
            relpath=self.fn.relpath,
            qualname=f"{self.fn.qualname}.<locals>.{node.name}",
            parent=self.fn,
        )
        self.fn.nested[node.name] = child

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # classes defined inside functions are out of scope

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return  # opaque: runs later, not under the current held-set

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            ctx = item.context_expr
            self.visit(ctx)
            attr = is_self_attr(ctx)
            kind = self._sync_kind(attr) if attr else None
            if attr and kind in _MUTEX_KINDS:
                effective = (
                    self.cls.cond_wraps.get(attr, attr)
                    if kind == "condition" and self.cls
                    else attr
                )
                self.fn.acquires.append(
                    AcquireEvent(
                        effective, ctx.lineno, ctx.col_offset, self._snap()
                    )
                )
                self.held.append(effective)
                pushed += 1
            elif attr and kind == "semaphore":
                self.fn.blocks.append(
                    BlockEvent(
                        "semaphore acquire",
                        ctx.lineno,
                        ctx.col_offset,
                        self._snap(),
                    )
                )
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_targets(target)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            value_attr = is_self_attr(node.value)
            if value_attr is not None:
                self.fn.local_types.setdefault(name, f"@attr:{value_attr}")
            else:
                t = _value_type(node.value, self.imports, self.fn.module)
                if t is not None:
                    self.fn.local_types.setdefault(name, t)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_targets(node.target)
        if isinstance(node.target, ast.Name):
            t = _ann_type(node.annotation, self.imports, self.fn.module)
            if t is not None:
                self.fn.local_types.setdefault(node.target.id, t)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_targets(node.target)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_targets(target)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            elt: str | None = None
            if isinstance(node.iter, ast.Name):
                t = self._var_type(node.iter.id)
                if t and t.startswith("list:"):
                    elt = t[len("list:"):]
            else:
                attr = is_self_attr(node.iter)
                if attr and self.cls:
                    t = self.cls.attr_types.get(attr)
                    if t and t.startswith("list:"):
                        elt = t[len("list:"):]
            if elt:
                self.fn.local_types.setdefault(node.target.id, elt)
        self.generic_visit(node)

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        held = self._snap()
        line, col = node.lineno, node.col_offset

        # Spawns: threading.Thread(target=...) and executor.submit(fn, ...)
        resolved = self.imports.resolve(func)
        if resolved == "threading.Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    ref = self._target_ref(kw.value)
                    if ref is not None:
                        self.fn.spawns.append(
                            SpawnEvent(ref, line, col, "thread")
                        )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "submit"
            and node.args
        ):
            recv = func.value
            recv_name = (
                is_self_attr(recv)
                or (recv.id if isinstance(recv, ast.Name) else "")
                or ""
            ).lower()
            recv_type = None
            if isinstance(recv, ast.Name):
                recv_type = self._var_type(recv.id)
            elif is_self_attr(recv) and self.cls:
                recv_type = self.cls.attr_types.get(is_self_attr(recv))
            is_executor = recv_type == "concurrent.futures.ThreadPoolExecutor" or any(
                hint in recv_name for hint in ("executor", "pool")
            )
            if is_executor:
                ref = self._target_ref(node.args[0])
                if ref is not None:
                    self.fn.spawns.append(
                        SpawnEvent(ref, line, col, "executor")
                    )

        # Self-attribute synchronization objects used by call form.
        handled = False
        if isinstance(func, ast.Attribute):
            attr = is_self_attr(func.value)
            kind = self._sync_kind(attr) if attr else None
            if attr and kind is not None:
                handled = True
                if kind in ("lock", "rlock") and func.attr == "acquire":
                    self.fn.acquires.append(
                        AcquireEvent(attr, line, col, held)
                    )
                elif kind == "condition" and func.attr in ("wait", "wait_for"):
                    self.fn.blocks.append(
                        BlockEvent(
                            "condition wait", line, col, held, via_cond=attr
                        )
                    )
                elif kind == "event" and func.attr == "wait":
                    self.fn.blocks.append(
                        BlockEvent("event wait", line, col, held)
                    )
                elif kind == "semaphore" and func.attr == "acquire":
                    self.fn.blocks.append(
                        BlockEvent("semaphore acquire", line, col, held)
                    )
                else:
                    handled = False

            # In-place mutation through a container method.
            if func.attr in _MUTATING_METHODS:
                self._record_mut(func.value, line, col)

        if not handled:
            name = resolved or (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in _BLOCKING_NAME_CALLS:
                self.fn.blocks.append(
                    BlockEvent(_BLOCKING_NAME_CALLS[name], line, col, held)
                )
            else:
                ref = self._callee_ref(func)
                if ref is not None:
                    self.fn.calls.append(CallEvent(ref, line, col, held))

        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        if isinstance(func, ast.Attribute):
            # Chained receivers can themselves be calls that matter,
            # e.g. ``threading.Thread(target=...).start()``.
            self.visit(func.value)
        elif not isinstance(func, ast.Name):
            self.visit(func)


def _scan_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    cls: ClassModel | None,
    imports: ImportMap,
    module: str,
    relpath: str,
    qualname: str,
    parent: FunctionModel | None = None,
) -> FunctionModel:
    fn = FunctionModel(
        qualname=qualname,
        module=module,
        relpath=relpath,
        cls=cls.qualname if cls else None,
        name=node.name,
        lineno=node.lineno,
        parent=parent,
    )
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        t = _ann_type(arg.annotation, imports, module)
        if t is not None:
            fn.param_types[arg.arg] = t
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            dec_name = dotted_name(dec.func) or ""
            if dec_name.rsplit(".", 1)[-1] == "locks_required":
                names = []
                for a in dec.args:
                    if isinstance(a, ast.Constant) and isinstance(a.value, str):
                        value = a.value
                        if value.startswith("self."):
                            value = value[len("self."):]
                        names.append(value)
                if names:
                    fn.locks_required = tuple(names)
    scanner = _FnScanner(fn, cls, imports)
    for stmt in node.body:
        scanner.visit(stmt)
    return fn


# --------------------------------------------------------------------------
# Per-class / per-module extraction
# --------------------------------------------------------------------------


def _extract_class(
    node: ast.ClassDef,
    *,
    module: str,
    relpath: str,
    imports: ImportMap,
    lines: list[str],
) -> ClassModel:
    cls = ClassModel(
        qualname=f"{module}.{node.name}",
        module=module,
        relpath=relpath,
        name=node.name,
        lineno=node.lineno,
    )

    def note_guard(attr: str, stmt: ast.stmt) -> None:
        start = stmt.lineno
        end = getattr(stmt, "end_lineno", None) or start
        for lineno in range(start, min(end, len(lines)) + 1):
            match = GUARD_RE.search(lines[lineno - 1])
            if match:
                text = match.group("guard").strip()
                existing = cls.guards.get(attr)
                if existing is None or lineno < existing.line:
                    cls.guards[attr] = Guard(text, _guard_token(text), lineno)
                return

    def note_assignment(
        attr: str,
        value: ast.AST | None,
        stmt: ast.stmt,
        params: dict[str, str],
    ) -> None:
        note_guard(attr, stmt)
        if value is None:
            return
        if isinstance(value, ast.Call):
            ctor = imports.resolve(value.func)
            kind = _SYNC_CTORS.get(ctor or "")
            if kind is not None:
                cls.locks[attr] = kind
                if kind == "condition" and value.args:
                    wrapped = is_self_attr(value.args[0])
                    if wrapped is not None:
                        cls.cond_wraps[attr] = wrapped
                return
        if isinstance(value, ast.Name) and value.id in params:
            # `self.store = store` with `store: FeatureStore` annotated.
            cls.attr_types.setdefault(attr, params[value.id])
            return
        t = _value_type(value, imports, module)
        if t is not None:
            cls.attr_types.setdefault(attr, t)

    # Phase A: attribute types, locks, and guard declarations, from every
    # `self.X = ...` anywhere in the class plus class-level annotations.
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        margs = method.args
        params: dict[str, str] = {}
        for arg in [*margs.posonlyargs, *margs.args, *margs.kwonlyargs]:
            t = _ann_type(arg.annotation, imports, module)
            if t is not None:
                params[arg.arg] = t
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    attr = is_self_attr(target)
                    if attr is not None:
                        note_assignment(attr, stmt.value, stmt, params)
            elif isinstance(stmt, ast.AnnAssign):
                attr = is_self_attr(stmt.target)
                if attr is not None:
                    note_guard(attr, stmt)
                    t = _ann_type(stmt.annotation, imports, module)
                    if t is not None:
                        cls.attr_types.setdefault(attr, t)
                    if stmt.value is not None:
                        note_assignment(attr, stmt.value, stmt, params)
            elif isinstance(stmt, ast.AugAssign):
                attr = is_self_attr(stmt.target)
                if attr is not None:
                    note_guard(attr, stmt)
    for stmt in node.body:
        # class-level field annotations (dataclass style)
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            attr = stmt.target.id
            note_guard(attr, stmt)
            t = _ann_type(stmt.annotation, imports, module)
            if t is not None:
                cls.attr_types.setdefault(attr, t)

    # Phase B: scan method bodies with the lock vocabulary in place.
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = _scan_function(
                stmt,
                cls=cls,
                imports=imports,
                module=module,
                relpath=relpath,
                qualname=f"{cls.qualname}.{stmt.name}",
            )
    return cls


def _extract_module(
    relpath: str, tree: ast.Module, source: str, imports: ImportMap
) -> ModuleModel:
    module = _module_name(relpath)
    model = ModuleModel(module=module, relpath=relpath)
    lines = source.splitlines()
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            cls = _extract_class(
                stmt,
                module=module,
                relpath=relpath,
                imports=imports,
                lines=lines,
            )
            model.classes[cls.name] = cls
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.functions[stmt.name] = _scan_function(
                stmt,
                cls=None,
                imports=imports,
                module=module,
                relpath=relpath,
                qualname=f"{module}.{stmt.name}",
            )
    return model


# --------------------------------------------------------------------------
# Project model + linking
# --------------------------------------------------------------------------


class ProjectModel:
    """Linked whole-program view used by the solver."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleModel] = {}
        self.classes: dict[str, ClassModel] = {}
        self.functions: dict[str, FunctionModel] = {}
        self.class_functions: dict[str, list[FunctionModel]] = defaultdict(list)

    def add_module(self, mod: ModuleModel) -> None:
        self.modules[mod.module] = mod

        def register(fn: FunctionModel) -> None:
            self.functions[fn.qualname] = fn
            if fn.cls:
                self.class_functions[fn.cls].append(fn)
            for child in fn.nested.values():
                register(child)

        for cls in mod.classes.values():
            self.classes[cls.qualname] = cls
            for fn in cls.methods.values():
                register(fn)
        for fn in mod.functions.values():
            register(fn)

    # -- resolution ------------------------------------------------------

    def resolve_class(self, type_str: str | None) -> ClassModel | None:
        if not type_str or type_str.startswith(("list:", "@attr:")):
            return None
        cls = self.classes.get(type_str)
        if cls is not None:
            return cls
        # Re-exports (`from repro.serve import ServeEngine`): fall back to
        # a unique suffix match on the bare class name.
        tail = "." + type_str.rsplit(".", 1)[-1]
        candidates = [q for q in self.classes if q.endswith(tail)]
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def type_of(self, fn: FunctionModel, type_str: str | None) -> str | None:
        """Resolve ``@attr:`` markers against the function's class."""
        if type_str and type_str.startswith("@attr:"):
            cls = self.classes.get(fn.cls or "")
            if cls is None:
                return None
            return cls.attr_types.get(type_str[len("@attr:"):])
        return type_str

    def var_type(self, fn: FunctionModel, name: str) -> str | None:
        cursor: FunctionModel | None = fn
        while cursor is not None:
            if name in cursor.local_types:
                return self.type_of(fn, cursor.local_types[name])
            if name in cursor.param_types:
                return self.type_of(fn, cursor.param_types[name])
            cursor = cursor.parent
        return None

    def resolve_callee(
        self, fn: FunctionModel, ref: CalleeRef
    ) -> FunctionModel | tuple[str, str] | None:
        """A project FunctionModel, an ``(external type, method)`` pair,
        or None when the receiver cannot be typed."""
        if ref.kind == "self":
            cls = self.classes.get(fn.cls or "")
            if cls is not None:
                return cls.methods.get(ref.name)
            return None
        if ref.kind in ("attr", "var"):
            if ref.kind == "attr":
                cls = self.classes.get(fn.cls or "")
                t = cls.attr_types.get(ref.base) if cls else None
                t = self.type_of(fn, t)
            else:
                t = self.var_type(fn, ref.base)
            if t is None or t.startswith("list:"):
                return None
            target = self.resolve_class(t)
            if target is not None:
                return target.methods.get(ref.name)
            return (t, ref.name)
        if ref.kind == "name":
            name = ref.name
            if "." not in name:
                cursor: FunctionModel | None = fn
                while cursor is not None:
                    if name in cursor.nested:
                        return cursor.nested[name]
                    cursor = cursor.parent
                mod = self.modules.get(fn.module)
                if mod is not None:
                    if name in mod.functions:
                        return mod.functions[name]
                    if name in mod.classes:
                        return mod.classes[name].methods.get("__init__")
                return None
            # Dotted: longest module prefix, then function / class / method.
            parts = name.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                mod = self.modules.get(prefix)
                if mod is None:
                    continue
                rest = parts[cut:]
                if len(rest) == 1:
                    if rest[0] in mod.functions:
                        return mod.functions[rest[0]]
                    if rest[0] in mod.classes:
                        return mod.classes[rest[0]].methods.get("__init__")
                elif len(rest) == 2 and rest[0] in mod.classes:
                    return mod.classes[rest[0]].methods.get(rest[1])
                return None
            cls = self.resolve_class(".".join(parts[:-1]))
            if cls is not None:
                return cls.methods.get(parts[-1])
        return None


def build_model(files: list[tuple[str, ast.Module, str, ImportMap]]) -> ProjectModel:
    """files: (relpath, tree, source, imports) for every in-scope file."""
    model = ProjectModel()
    for relpath, tree, source, imports in files:
        model.add_module(_extract_module(relpath, tree, source, imports))
    return model


# --------------------------------------------------------------------------
# Solver
# --------------------------------------------------------------------------


def _qual_held(fn: FunctionModel, held: tuple[str, ...]) -> frozenset[str]:
    if fn.cls is None or not held:
        return frozenset()
    return frozenset(f"{fn.cls}.{attr}" for attr in held)


def _display_fn(fn: FunctionModel) -> str:
    return fn.qualname.replace(".<locals>.", "::")


class _Solver:
    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.findings: list[ConcurrencyFinding] = []
        self.resolved: dict[int, FunctionModel | tuple[str, str] | None] = {}
        self.call_sites: dict[str, list[tuple[FunctionModel, CallEvent]]] = (
            defaultdict(list)
        )
        self.may: dict[str, set[str]] = defaultdict(set)
        self.must: dict[str, frozenset[str]] = {}
        self.init_only: dict[str, frozenset[str]] = {}
        self.blocking: dict[str, str] = {}
        self.shared: dict[str, str] = {}  # class qualname -> root witness

    # -- setup -----------------------------------------------------------

    def _link_calls(self) -> None:
        for fn in self.model.functions.values():
            for site in fn.calls:
                target = self.model.resolve_callee(fn, site.ref)
                self.resolved[id(site)] = target
                if isinstance(target, FunctionModel):
                    self.call_sites[target.qualname].append((fn, site))

    def _compute_init_only(self) -> None:
        """Methods reachable only from construction, per class.

        Their bodies run before the object is published to other
        threads, so guard/contract checks skip them.
        """
        for qual, cls in self.model.classes.items():
            init_only = set(_CONSTRUCTION_METHODS & set(cls.methods))
            changed = True
            while changed:
                changed = False
                for name, fn in cls.methods.items():
                    if name in init_only or name in _CONSTRUCTION_METHODS:
                        continue
                    sites = self.call_sites.get(fn.qualname, [])
                    if not sites:
                        continue  # public entry point: not construction
                    if all(
                        caller.cls == qual
                        and caller.name in init_only
                        for caller, _ in sites
                    ):
                        init_only.add(name)
                        changed = True
            self.init_only[qual] = frozenset(init_only)

    def _is_construction(self, fn: FunctionModel) -> bool:
        root = fn
        while root.parent is not None:
            root = root.parent
        if root.cls is None:
            return False
        return root.name in self.init_only.get(root.cls, frozenset())

    def _compute_may(self) -> None:
        changed = True
        while changed:
            changed = False
            for fn in self.model.functions.values():
                base = self.may[fn.qualname]
                for site in fn.calls:
                    target = self.resolved.get(id(site))
                    if not isinstance(target, FunctionModel):
                        continue
                    incoming = _qual_held(fn, site.held) | base
                    dest = self.may[target.qualname]
                    if not incoming <= dest:
                        dest |= incoming
                        changed = True

    def _compute_must(self) -> None:
        declared: dict[str, frozenset[str]] = {}
        for fn in self.model.functions.values():
            if fn.locks_required and fn.cls:
                declared[fn.qualname] = frozenset(
                    f"{fn.cls}.{lock}" for lock in fn.locks_required
                )
        must: dict[str, frozenset[str]] = {
            q: declared.get(q, frozenset()) for q in self.model.functions
        }
        changed = True
        while changed:
            changed = False
            for qual, fn in self.model.functions.items():
                if qual in declared:
                    continue
                sites = self.call_sites.get(qual, [])
                if not sites:
                    continue
                value: frozenset[str] | None = None
                for caller, site in sites:
                    contrib = _qual_held(caller, site.held) | must[caller.qualname]
                    value = contrib if value is None else (value & contrib)
                if value and value != must[qual]:
                    must[qual] = frozenset(value)
                    changed = True
        self.must = must

    def _compute_blocking(self) -> None:
        """Transitive 'this function can block' reasons (BFS keeps the
        shortest explanation chain)."""
        frontier: list[str] = []
        for qual, fn in self.model.functions.items():
            reason = None
            if fn.blocks:
                reason = fn.blocks[0].what
            else:
                for site in fn.calls:
                    ext = self._external_blocking(fn, site)
                    if ext is not None:
                        reason = ext
                        break
            if reason is not None:
                self.blocking[qual] = reason
                frontier.append(qual)
        while frontier:
            next_frontier: list[str] = []
            for qual in frontier:
                reason = self.blocking[qual]
                fn = self.model.functions[qual]
                for caller, _site in self.call_sites.get(qual, []):
                    if caller.qualname in self.blocking:
                        continue
                    self.blocking[caller.qualname] = (
                        f"calls {_display_fn(fn)} which blocks ({reason})"
                    )
                    next_frontier.append(caller.qualname)
            frontier = next_frontier

    def _external_blocking(
        self, fn: FunctionModel, site: CallEvent
    ) -> str | None:
        target = self.resolved.get(id(site))
        if isinstance(target, tuple):
            reason = _BLOCKING_TYPED_METHODS.get(target)
            if reason is not None:
                return reason
        if isinstance(target, FunctionModel):
            if target.module.startswith("repro.kernels"):
                if target.name in ("forward", "backward"):
                    return f"kernel {target.name}"
            return None
        if target is None and site.ref.name == "forward":
            return "kernel forward (unresolved receiver)"
        return None

    def _compute_shared(self) -> None:
        roots: list[FunctionModel] = []
        for fn in self.model.functions.values():
            for spawn in fn.spawns:
                target = self.model.resolve_callee(fn, spawn.ref)
                if isinstance(target, FunctionModel):
                    roots.append(target)
        seen: set[str] = set()
        queue: list[tuple[FunctionModel, str]] = [
            (root, _display_fn(root)) for root in roots
        ]
        while queue:
            fn, witness = queue.pop()
            if fn.qualname in seen:
                continue
            seen.add(fn.qualname)
            if fn.cls and fn.cls not in self.shared:
                self.shared[fn.cls] = witness
            for site in fn.calls:
                target = self.resolved.get(id(site))
                if isinstance(target, FunctionModel):
                    queue.append((target, witness))
            for child in fn.nested.values():
                queue.append((child, witness))

    # -- checks ----------------------------------------------------------

    def _eff_held(self, fn: FunctionModel, held: tuple[str, ...]) -> frozenset[str]:
        return _qual_held(fn, held) | self.must.get(fn.qualname, frozenset())

    def _emit(
        self, rule: str, fn: FunctionModel, line: int, col: int, message: str
    ) -> None:
        self.findings.append(
            ConcurrencyFinding(rule, fn.relpath, line, col, message)
        )

    def _check_lock_order(self) -> None:
        edges: dict[tuple[str, str], tuple[FunctionModel, int, int]] = {}
        for fn in self.model.functions.values():
            if fn.cls is None:
                continue
            for acq in fn.acquires:
                to = f"{fn.cls}.{acq.lock}"
                before = _qual_held(fn, acq.held) | self.may.get(
                    fn.qualname, set()
                )
                for frm in sorted(before):
                    if frm != to:
                        edges.setdefault((frm, to), (fn, acq.line, acq.col))

        graph: dict[str, list[str]] = defaultdict(list)
        for frm, to in edges:
            graph[frm].append(to)
        for dests in graph.values():
            dests.sort()

        cycles: dict[tuple[str, ...], tuple[str, ...]] = {}
        state: dict[str, int] = {}
        stack: list[str] = []

        def dfs(node: str) -> None:
            state[node] = 1
            stack.append(node)
            for nxt in graph.get(node, []):
                if state.get(nxt, 0) == 0:
                    dfs(nxt)
                elif state.get(nxt) == 1:
                    cycle = tuple(stack[stack.index(nxt):])
                    pivot = cycle.index(min(cycle))
                    canonical = cycle[pivot:] + cycle[:pivot]
                    cycles.setdefault(canonical, cycle)
            stack.pop()
            state[node] = 2

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                dfs(node)

        for canonical in sorted(cycles):
            path = canonical + (canonical[0],)
            frm, to = canonical[0], canonical[1 % len(canonical)]
            fn, line, col = edges[(frm, to)]
            self._emit(
                "lock-order",
                fn,
                line,
                col,
                f"lock-order cycle {' -> '.join(path)} (potential "
                f"deadlock): {to} is acquired while holding {frm}",
            )

    def _check_blocking(self) -> None:
        for fn in self.model.functions.values():
            for ev in fn.blocks:
                eff = self._eff_held(fn, ev.held)
                if ev.via_cond and fn.cls:
                    cls = self.model.classes.get(fn.cls)
                    allowed = {f"{fn.cls}.{ev.via_cond}"}
                    if cls is not None:
                        wrapped = cls.cond_wraps.get(ev.via_cond)
                        if wrapped:
                            allowed.add(f"{fn.cls}.{wrapped}")
                    extra = eff - allowed
                else:
                    extra = eff
                if extra:
                    self._emit(
                        "blocking-under-lock",
                        fn,
                        ev.line,
                        ev.col,
                        f"blocking operation ({ev.what}) while holding "
                        f"{', '.join(sorted(extra))}",
                    )
            for site in fn.calls:
                eff = self._eff_held(fn, site.held)
                if not eff:
                    continue
                target = self.resolved.get(id(site))
                if isinstance(target, FunctionModel):
                    reason = self.blocking.get(target.qualname)
                    if reason is not None and not reason.startswith("calls "):
                        self._emit(
                            "blocking-under-lock",
                            fn,
                            site.line,
                            site.col,
                            f"call into {_display_fn(target)} blocks "
                            f"({reason}) while holding "
                            f"{', '.join(sorted(eff))}",
                        )
                    elif reason is not None:
                        self._emit(
                            "blocking-under-lock",
                            fn,
                            site.line,
                            site.col,
                            f"call into {_display_fn(target)} {reason} "
                            f"while holding {', '.join(sorted(eff))}",
                        )
                else:
                    ext = self._external_blocking(fn, site)
                    if ext is not None:
                        self._emit(
                            "blocking-under-lock",
                            fn,
                            site.line,
                            site.col,
                            f"blocking operation ({ext}) while holding "
                            f"{', '.join(sorted(eff))}",
                        )

    def _check_escapes_and_guards(self) -> None:
        for cls_qual in sorted(self.shared):
            witness = self.shared[cls_qual]
            cls = self.model.classes.get(cls_qual)
            if cls is None:
                continue
            for fn in self.model.class_functions.get(cls_qual, []):
                if self._is_construction(fn):
                    continue
                for mut in fn.muts:
                    self._check_mut(fn, cls, mut, witness)

    def _check_mut(
        self,
        fn: FunctionModel,
        cls: ClassModel,
        mut: MutEvent,
        witness: str,
    ) -> None:
        if mut.obj == "":
            target_cls = cls
        else:
            t = self.model.type_of(fn, cls.attr_types.get(mut.obj))
            target_cls = self.model.resolve_class(t) if t else None
            if target_cls is None:
                return
            if (
                target_cls.qualname not in self.shared
                and not target_cls.locks
            ):
                return
        attr = mut.attr
        if attr in target_cls.locks:
            return  # synchronization objects manage themselves
        eff = self._eff_held(fn, mut.held)
        own_locks = target_cls.mutex_quals()
        guard = target_cls.guards.get(attr)
        display = (
            f"self.{attr}" if mut.obj == "" else f"self.{mut.obj}.{attr}"
        )
        if guard is not None:
            if guard.token is not None:
                kind = target_cls.locks.get(guard.token)
                if kind not in _MUTEX_KINDS:
                    self._emit(
                        "lock-contract",
                        fn,
                        mut.line,
                        mut.col,
                        f"'# guarded-by: {guard.token}' on "
                        f"{target_cls.name}.{attr} does not name a lock "
                        f"attribute of {target_cls.name}; use a lock attr "
                        f"or a descriptive non-identifier note",
                    )
                elif f"{target_cls.qualname}.{guard.token}" not in eff:
                    self._emit(
                        "lock-contract",
                        fn,
                        mut.line,
                        mut.col,
                        f"{display} is declared '# guarded-by: "
                        f"{guard.token}' but is written without holding "
                        f"{target_cls.qualname}.{guard.token}",
                    )
            # non-identifier guard text: documented discipline, exempt
            return
        if not (eff & own_locks):
            self._emit(
                "thread-escape",
                fn,
                mut.line,
                mut.col,
                f"{display} of {target_cls.name} is written without a "
                f"lock, but {target_cls.name} is shared across threads "
                f"(reached from thread target {witness}); hold one of "
                f"its locks or declare '# guarded-by: <discipline>' on "
                f"the attribute",
            )

    def _check_contracts(self) -> None:
        for fn in self.model.functions.values():
            if self._is_construction(fn):
                continue
            for site in fn.calls:
                target = self.resolved.get(id(site))
                if (
                    not isinstance(target, FunctionModel)
                    or not target.locks_required
                    or not target.cls
                ):
                    continue
                need = {
                    f"{target.cls}.{lock}" for lock in target.locks_required
                }
                eff = self._eff_held(fn, site.held)
                missing = need - eff
                if missing:
                    self._emit(
                        "lock-contract",
                        fn,
                        site.line,
                        site.col,
                        f"call to {_display_fn(target)} requires "
                        f"{', '.join(sorted(need))} (locks_required) but "
                        f"the call site does not hold "
                        f"{', '.join(sorted(missing))}",
                    )

    # -- entry point -----------------------------------------------------

    def solve(self) -> list[ConcurrencyFinding]:
        self._link_calls()
        self._compute_init_only()
        self._compute_may()
        self._compute_must()
        self._compute_blocking()
        self._compute_shared()
        self._check_lock_order()
        self._check_blocking()
        self._check_escapes_and_guards()
        self._check_contracts()
        self.findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
        )
        return self.findings


def analyze(model: ProjectModel) -> list[ConcurrencyFinding]:
    return _Solver(model).solve()


def analyze_project(
    files: list[tuple[str, ast.Module, str, ImportMap]]
) -> list[ConcurrencyFinding]:
    """Convenience wrapper: build the model and solve in one step."""
    return analyze(build_model(files))
