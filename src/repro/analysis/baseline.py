"""Committed baseline of grandfathered findings.

The baseline lets the CI gate turn red only on *new* findings: existing
violations are recorded once (``repro lint --write-baseline``),
committed, and subtracted from later runs.  Matching is by
location-insensitive key (rule, path, message) with multiset semantics,
so fixing one of two identical findings in a file retires exactly one
entry — and a baseline entry whose finding disappeared is reported as
*stale* so the file shrinks monotonically instead of rotting.

Version 2 closes the stale-suppression hazard: every entry carries the
*fingerprint* of the rule that produced it — a hash of the rule's name,
its declared :attr:`~repro.analysis.framework.LintRule.version`, the
source bytes of the module defining it, and the resolved lint
configuration (:meth:`~repro.analysis.config.LintConfig.fingerprint`).
Rewriting a rule, bumping its version, or editing ``[tool.repro.lint]``
changes the fingerprint, so the affected entries stop matching and
their findings resurface instead of staying silently suppressed by a
baseline written against different semantics.  Invalidated entries are
reported (not errored) so ``--write-baseline`` can refresh them in one
step.

Policy (enforced by ``tests/analysis/test_baseline_policy.py``): the
``no-nondeterminism`` and ``span-leak`` rules may never be baselined —
Algorithm 2 parity bugs don't get grandfathered.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from collections import Counter
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.analysis.framework import AnalysisError, LintRule

__all__ = [
    "BASELINE_VERSION",
    "NEVER_BASELINE",
    "baseline_fingerprints",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 2

#: Rules whose findings must be fixed or suppressed, never grandfathered.
NEVER_BASELINE = frozenset({"no-nondeterminism", "span-leak"})


def _rule_source(rule: LintRule) -> bytes:
    try:
        return inspect.getsource(type(rule)).encode()
    except (OSError, TypeError):  # pragma: no cover - builtins/REPL rules
        return type(rule).__qualname__.encode()


def baseline_fingerprints(
    rules: list[LintRule], config: LintConfig
) -> dict[str, str]:
    """Per-rule fingerprint: rule identity + semantics + configuration."""
    config_fp = config.fingerprint()
    out: dict[str, str] = {}
    for rule in rules:
        digest = hashlib.sha256()
        digest.update(rule.name.encode())
        digest.update(b"\x00")
        digest.update(str(rule.version).encode())
        digest.update(b"\x00")
        digest.update(_rule_source(rule))
        digest.update(b"\x00")
        digest.update(config_fp.encode())
        out[rule.name] = digest.hexdigest()
    return out


def load_baseline(
    path: str | Path, fingerprints: dict[str, str]
) -> tuple[Counter, list[tuple[str, str, str]]]:
    """Load the baseline, dropping entries whose fingerprint drifted.

    Returns ``(multiset of still-valid keys, invalidated keys)``.
    Entries for rules absent from ``fingerprints`` (not selected this
    run) are kept — their rules produce no findings, so they cannot
    hide anything.  The file missing entirely is an empty baseline.
    """
    path = Path(path)
    if not path.is_file():
        return Counter(), []
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"corrupt lint baseline {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"{path}: unsupported baseline version {raw.get('version')!r} "
            f"(expected {BASELINE_VERSION}; regenerate with "
            f"'repro lint --write-baseline')"
        )
    baseline: Counter = Counter()
    invalidated: list[tuple[str, str, str]] = []
    for entry in raw.get("findings", []):
        key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
        if key[0] in NEVER_BASELINE:
            raise AnalysisError(
                f"{path}: rule {key[0]!r} findings may not be baselined "
                f"(fix or suppress with an annotated noqa instead)"
            )
        count = int(entry.get("count", 1))
        expected = fingerprints.get(key[0])
        if expected is not None and entry.get("fingerprint") != expected:
            invalidated.extend([key] * count)
            continue
        baseline[key] += count
    return baseline, sorted(invalidated)


def write_baseline(
    path: str | Path,
    findings: list[Finding],
    fingerprints: dict[str, str],
) -> int:
    """Write current findings as the new baseline; returns entry count.

    Findings of :data:`NEVER_BASELINE` rules are refused — they must be
    fixed before a baseline can be written.  Every entry records its
    rule's current fingerprint.
    """
    blocked = sorted({f.rule for f in findings if f.rule in NEVER_BASELINE})
    if blocked:
        raise AnalysisError(
            f"cannot baseline findings of rule(s) {', '.join(blocked)}; "
            f"fix them or add annotated '# repro: noqa[...]' suppressions"
        )
    missing = sorted(
        {f.rule for f in findings if f.rule not in fingerprints}
    )
    if missing:
        raise AnalysisError(
            f"no fingerprint for rule(s) {', '.join(missing)}; baselines "
            f"must be written from a run where those rules were active"
        )
    counts = Counter(f.baseline_key() for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": rule,
                "path": rel,
                "message": message,
                "count": count,
                "fingerprint": fingerprints[rule],
            }
            for (rule, rel, message), count in sorted(counts.items())
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return sum(counts.values())


def apply_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], int, list[tuple[str, str, str]]]:
    """Split findings into (new, grandfathered-count, stale-keys)."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered = 0
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered += 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return new, grandfathered, stale
