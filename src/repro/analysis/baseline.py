"""Committed baseline of grandfathered findings.

The baseline lets the CI gate turn red only on *new* findings: existing
violations are recorded once (``repro lint --write-baseline``),
committed, and subtracted from later runs.  Matching is by
location-insensitive key (rule, path, message) with multiset semantics,
so fixing one of two identical findings in a file retires exactly one
entry — and a baseline entry whose finding disappeared is reported as
*stale* so the file shrinks monotonically instead of rotting.

Policy (enforced by ``tests/analysis/test_baseline_policy.py``): the
``no-nondeterminism`` and ``span-leak`` rules may never be baselined —
Algorithm 2 parity bugs don't get grandfathered.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.framework import AnalysisError

__all__ = [
    "BASELINE_VERSION",
    "NEVER_BASELINE",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1

#: Rules whose findings must be fixed or suppressed, never grandfathered.
NEVER_BASELINE = frozenset({"no-nondeterminism", "span-leak"})


def load_baseline(path: str | Path) -> Counter:
    """Multiset of baseline keys; empty when the file doesn't exist."""
    path = Path(path)
    if not path.is_file():
        return Counter()
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"corrupt lint baseline {path}: {exc}") from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise AnalysisError(
            f"{path}: unsupported baseline version {raw.get('version')!r} "
            f"(expected {BASELINE_VERSION})"
        )
    baseline: Counter = Counter()
    for entry in raw.get("findings", []):
        key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
        if key[0] in NEVER_BASELINE:
            raise AnalysisError(
                f"{path}: rule {key[0]!r} findings may not be baselined "
                f"(fix or suppress with an annotated noqa instead)"
            )
        baseline[key] += int(entry.get("count", 1))
    return baseline


def write_baseline(path: str | Path, findings: list[Finding]) -> int:
    """Write current findings as the new baseline; returns entry count.

    Findings of :data:`NEVER_BASELINE` rules are refused — they must be
    fixed before a baseline can be written.
    """
    blocked = sorted({f.rule for f in findings if f.rule in NEVER_BASELINE})
    if blocked:
        raise AnalysisError(
            f"cannot baseline findings of rule(s) {', '.join(blocked)}; "
            f"fix them or add annotated '# repro: noqa[...]' suppressions"
        )
    counts = Counter(f.baseline_key() for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": rel, "message": message, "count": count}
            for (rule, rel, message), count in sorted(counts.items())
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return sum(counts.values())


def apply_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], int, list[tuple[str, str, str]]]:
    """Split findings into (new, grandfathered-count, stale-keys)."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered = 0
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered += 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return new, grandfathered, stale
