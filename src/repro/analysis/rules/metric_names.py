"""``metric-name``: every emitted ``buffalo.*`` metric is registered.

Dashboards, the metrics snapshot diff in CI, and the estimator-accuracy
telemetry all key on metric names.  A typo'd or ad-hoc name silently
forks a time series, so every ``buffalo.*`` string passed to
``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` must appear in
the closed registry :data:`repro.obs.schema.METRIC_NAMES` — adding a
metric means adding its name (and help text) there first, which keeps
``docs/observability.md`` and consumers in sync.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, LintRule, register_rule

_EMITTERS = frozenset({"counter", "gauge", "histogram"})


@register_rule
class MetricNameRule(LintRule):
    name = "metric-name"
    description = (
        "buffalo.* metric names must exist in repro.obs.schema.METRIC_NAMES"
    )
    invariant = (
        "metrics snapshots are a stable contract; unregistered names "
        "fork time series and break consumers silently"
    )
    default_scopes = ("src/repro",)

    def check(self, ctx: FileContext) -> list[Finding]:
        # Imported lazily: rules must stay importable even while the
        # target package is mid-refactor.
        from repro.obs.schema import METRIC_NAMES

        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _EMITTERS
                and node.args
            ):
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            metric = first.value
            if not metric.startswith("buffalo."):
                continue
            if metric not in METRIC_NAMES:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"metric {metric!r} is not registered in "
                        f"repro.obs.schema.METRIC_NAMES; register it "
                        f"(with help text) before emitting",
                    )
                )
        return findings
