"""``no-nondeterminism``: parity-critical code must be bit-reproducible.

Algorithm 2 parity (pipelined == sequential == full-batch, enforced by
``tests/pipeline/test_parity.py``) only holds if every compute path is
a pure function of the seed.  Wall-clock reads, the stdlib ``random``
module (process-global state), numpy's legacy global RNG
(``np.random.rand`` & friends), and unseeded ``default_rng()`` all
smuggle ambient state into the math, so they are banned in the
parity-critical packages (``core/``, ``gnn/``, ``pipeline/``, ``nn/``).
Seeded generators (``rng_from(seed)`` / ``default_rng(seed)``) and
``time.perf_counter`` (telemetry-only durations) remain fine.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, LintRule, register_rule

#: Exact dotted names that read ambient, non-seeded state.
_WALL_CLOCK = frozenset({"time.time", "time.time_ns"})

#: numpy.random members that are *not* global-state draws.
_NUMPY_RANDOM_OK = frozenset(
    {
        "numpy.random.Generator",
        "numpy.random.BitGenerator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.default_rng",  # seededness checked at call sites
    }
)


@register_rule
class NoNondeterminismRule(LintRule):
    name = "no-nondeterminism"
    description = (
        "bans wall-clock reads, stdlib random, numpy's global RNG, and "
        "unseeded default_rng() in parity-critical modules"
    )
    invariant = (
        "Algorithm 2 parity: micro-batched/pipelined training is "
        "bit-for-bit identical to full-batch for the same seed"
    )
    default_scopes = (
        "src/repro/core",
        "src/repro/gnn",
        "src/repro/pipeline",
        "src/repro/nn",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        seen: set[tuple[int, int, str]] = set()

        def add(node: ast.AST, message: str) -> None:
            key = (node.lineno, node.col_offset, message)
            if key not in seen:
                seen.add(key)
                findings.append(self.finding(ctx, node, message))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level == 0 and (
                    module == "random" or module.startswith("random.")
                ):
                    add(
                        node,
                        "import from stdlib 'random' (process-global RNG); "
                        "use a seeded numpy Generator (repro.config.rng_from)",
                    )
                continue
            if isinstance(node, ast.Call):
                resolved = ctx.imports.resolve(node.func)
                if resolved == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    add(
                        node,
                        "unseeded numpy.random.default_rng() draws OS "
                        "entropy; pass an explicit seed",
                    )
                continue
            if isinstance(node, (ast.Attribute, ast.Name)):
                resolved = ctx.imports.resolve(node)
                if resolved is None:
                    continue
                if resolved in _WALL_CLOCK:
                    add(
                        node,
                        f"wall-clock read '{resolved}' is nondeterministic; "
                        f"use time.perf_counter for durations",
                    )
                elif (
                    resolved.startswith("random.")
                    and resolved.count(".") == 1
                ):
                    add(
                        node,
                        f"stdlib '{resolved}' uses process-global RNG state; "
                        f"use a seeded numpy Generator",
                    )
                elif (
                    resolved.startswith("numpy.random.")
                    and resolved not in _NUMPY_RANDOM_OK
                ):
                    add(
                        node,
                        f"'{resolved}' draws from numpy's global RNG; use a "
                        f"seeded Generator (repro.config.rng_from)",
                    )
        return findings
