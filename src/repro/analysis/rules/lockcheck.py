"""``lock-discipline``: static lock-acquisition analysis of the
threaded pipeline/store layers.

PRs 2–3 introduced real threads (pipeline workers, the schedule-aware
prefetcher) whose shared mutable state is guarded by exactly one lock
per object (``FeatureStore._lock``).  BGL/GSplit-style systems show how
easily I/O-overlap stages grow unguarded counters and torn aggregates;
this pass catches the standard mistakes before they become
once-a-week flaky tests:

1. **Unguarded writes** — for each class owning a ``threading.Lock`` /
   ``RLock`` attribute, any attribute that is ever mutated while
   holding the lock (outside construction) is *lock-protected*; a
   mutation of that attribute anywhere else without the lock is
   flagged.  Construction-phase methods (``__init__`` and private
   helpers reachable only from it) are exempt — objects are published
   to other threads only after construction.
2. **Self-deadlock** — acquiring a non-reentrant lock already held
   (directly nested ``with``, or by calling a method that (transitively)
   re-acquires it).
3. **Lock-order cycles** — a directed acquisition graph is built from
   every nested acquisition (lock B taken while holding A); any cycle
   is a potential ABBA deadlock and is flagged at the class.

The analysis is intra-class and heuristic by design — it encodes this
project's discipline ("one lock per object, take it for every shared
read-modify-write") rather than attempting general escape analysis.
Known-benign writes carry annotated ``# repro: noqa[lock-discipline]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.astutils import is_self_attr
from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, LintRule, register_rule

_LOCK_TYPES = {
    "threading.Lock": False,   # -> reentrant?
    "threading.RLock": True,
}

#: Method calls that mutate their receiver (list/dict/set/deque API).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


@dataclass
class _Mutation:
    attr: str
    node: ast.AST
    held: frozenset[str]


@dataclass
class _Call:
    callee: str
    node: ast.AST
    held: frozenset[str]


@dataclass
class _MethodInfo:
    name: str
    mutations: list[_Mutation] = field(default_factory=list)
    acquires: set[str] = field(default_factory=set)
    calls: list[_Call] = field(default_factory=list)
    reacquires: list[tuple[str, ast.AST]] = field(default_factory=list)


class _MethodScanner(ast.NodeVisitor):
    """Walks one method tracking the set of self-locks currently held."""

    def __init__(
        self, lock_attrs: dict[str, bool], edges: set[tuple[str, str]]
    ) -> None:
        self.lock_attrs = lock_attrs
        self.edges = edges
        self.held: list[str] = []
        self.info: _MethodInfo | None = None

    def scan(self, node: ast.FunctionDef) -> _MethodInfo:
        self.info = _MethodInfo(name=node.name)
        self.held = []
        for stmt in node.body:
            self.visit(stmt)
        return self.info

    # -- lock acquisition ----------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            attr = is_self_attr(item.context_expr)
            if attr is not None and attr in self.lock_attrs:
                if attr in self.held and not self.lock_attrs[attr]:
                    self.info.reacquires.append((attr, node))
                for outer in self.held:
                    if outer != attr:
                        self.edges.add((outer, attr))
                acquired.append(attr)
                self.info.acquires.add(attr)
            elif item.context_expr is not None:
                self.visit(item.context_expr)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired):]

    visit_AsyncWith = visit_With

    # -- mutations ------------------------------------------------------
    def _record_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, node)
            return
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        attr = is_self_attr(base)
        if attr is not None and attr not in self.lock_attrs:
            self.info.mutations.append(
                _Mutation(attr, node, frozenset(self.held))
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_target(target, node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_attr = is_self_attr(func.value)
            # self.<attr>.append(...) style container mutation
            if (
                receiver_attr is not None
                and func.attr in _MUTATING_METHODS
                and receiver_attr not in self.lock_attrs
            ):
                self.info.mutations.append(
                    _Mutation(receiver_attr, node, frozenset(self.held))
                )
            # self.method(...) intra-class call
            method_name = is_self_attr(func)
            if method_name is not None:
                self.info.calls.append(
                    _Call(method_name, node, frozenset(self.held))
                )
        self.generic_visit(node)


def _find_lock_attrs(
    cls: ast.ClassDef, ctx: FileContext
) -> dict[str, bool]:
    """self attributes assigned a threading lock, -> reentrant flag."""
    locks: dict[str, bool] = {}
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        resolved = ctx.imports.resolve(node.value.func)
        if resolved not in _LOCK_TYPES:
            continue
        for target in node.targets:
            attr = is_self_attr(target)
            if attr is not None:
                locks[attr] = _LOCK_TYPES[resolved]
    return locks


def _init_only_methods(methods: dict[str, _MethodInfo]) -> set[str]:
    """Private methods reachable only from __init__ (construction phase)."""
    callers: dict[str, set[str]] = {name: set() for name in methods}
    for info in methods.values():
        for call in info.calls:
            if call.callee in callers:
                callers[call.callee].add(info.name)
    init_only = {"__init__"}
    changed = True
    while changed:
        changed = False
        for name, info in methods.items():
            if name in init_only or not name.startswith("_"):
                continue
            if name.startswith("__"):
                continue
            sites = callers[name]
            if sites and sites <= init_only:
                init_only.add(name)
                changed = True
    return init_only


def _transitive_acquires(methods: dict[str, _MethodInfo]) -> dict[str, set[str]]:
    acquired = {name: set(info.acquires) for name, info in methods.items()}
    changed = True
    while changed:
        changed = False
        for name, info in methods.items():
            for call in info.calls:
                if call.callee in acquired:
                    before = len(acquired[name])
                    acquired[name] |= acquired[call.callee]
                    if len(acquired[name]) != before:
                        changed = True
    return acquired


def _find_cycle(edges: set[tuple[str, str]]) -> list[str] | None:
    graph: dict[str, set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
    state: dict[str, int] = {}  # 1=visiting, 2=done

    def dfs(node: str, path: list[str]) -> list[str] | None:
        state[node] = 1
        path.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 1:
                return path[path.index(nxt):] + [nxt]
            if state.get(nxt) != 2:
                cycle = dfs(nxt, path)
                if cycle:
                    return cycle
        path.pop()
        state[node] = 2
        return None

    for start in sorted(graph):
        if state.get(start) != 2:
            cycle = dfs(start, [])
            if cycle:
                return cycle
    return None


@register_rule
class LockDisciplineRule(LintRule):
    name = "lock-discipline"
    description = (
        "unguarded writes to lock-protected attributes, self-deadlocks, "
        "and lock-order cycles in threaded classes"
    )
    invariant = (
        "pipeline/prefetch/store share mutable state across threads "
        "guarded by one lock per object; every shared read-modify-write "
        "must hold it"
    )
    default_scopes = (
        "src/repro/pipeline/engine.py",
        "src/repro/store/feature_store.py",
        "src/repro/store/prefetch.py",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in ast.walk(ctx.tree):
            if isinstance(cls, ast.ClassDef):
                findings.extend(self._check_class(cls, ctx))
        return findings

    def _check_class(
        self, cls: ast.ClassDef, ctx: FileContext
    ) -> list[Finding]:
        lock_attrs = _find_lock_attrs(cls, ctx)
        if not lock_attrs:
            return []
        findings: list[Finding] = []
        edges: set[tuple[str, str]] = set()
        methods: dict[str, _MethodInfo] = {}

        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef):
                scanner = _MethodScanner(lock_attrs, edges)
                methods[stmt.name] = scanner.scan(stmt)

        init_only = _init_only_methods(methods)
        acquires_trans = _transitive_acquires(methods)

        # Interprocedural held-lock propagation: a private helper whose
        # every non-construction call site holds lock L effectively runs
        # under L (FeatureStore._note_resident pattern).
        inherited: dict[str, frozenset[str]] = {}
        for name, info in methods.items():
            if not name.startswith("_") or name.startswith("__"):
                continue
            sites = [
                call.held
                for caller, caller_info in methods.items()
                if caller not in init_only
                for call in caller_info.calls
                if call.callee == name
            ]
            if sites:
                common = frozenset.intersection(*sites)
                if common:
                    inherited[name] = common

        def effective_held(method: str, held: frozenset[str]) -> frozenset[str]:
            return held | inherited.get(method, frozenset())

        # 1. lock-protected attributes and unguarded writes.
        guard_of: dict[str, set[str]] = {}
        for name, info in methods.items():
            if name in init_only:
                continue
            for mutation in info.mutations:
                held = effective_held(name, mutation.held)
                if held:
                    guard_of.setdefault(mutation.attr, set()).update(held)
        for name, info in methods.items():
            if name in init_only:
                continue
            for mutation in info.mutations:
                held = effective_held(name, mutation.held)
                if mutation.attr in guard_of and not held:
                    locks = "/".join(
                        f"self.{lock}" for lock in sorted(guard_of[mutation.attr])
                    )
                    findings.append(
                        self.finding(
                            ctx,
                            mutation.node,
                            f"attribute 'self.{mutation.attr}' is written "
                            f"under {locks} elsewhere but mutated here "
                            f"without holding it "
                            f"({cls.name}.{name})",
                        )
                    )

        # 2a. directly nested re-acquisition of a non-reentrant lock.
        for name, info in methods.items():
            for lock, node in info.reacquires:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"'with self.{lock}:' nested inside a region "
                        f"already holding it deadlocks (threading.Lock "
                        f"is not reentrant) ({cls.name}.{name})",
                    )
                )

        # 2b. calling a method that (transitively) re-acquires a held
        # non-reentrant lock.
        for name, info in methods.items():
            for call in info.calls:
                if call.callee not in methods:
                    continue
                for lock in sorted(call.held):
                    if lock_attrs.get(lock):
                        continue  # reentrant
                    if lock in acquires_trans.get(call.callee, ()):
                        findings.append(
                            self.finding(
                                ctx,
                                call.node,
                                f"calling 'self.{call.callee}()' while "
                                f"holding 'self.{lock}' deadlocks: "
                                f"'{call.callee}' re-acquires it "
                                f"({cls.name}.{name})",
                            )
                        )

        # 3. lock-order cycles across the class's acquisition graph.
        cycle = _find_cycle(edges)
        if cycle:
            pretty = " -> ".join(f"self.{lock}" for lock in cycle)
            findings.append(
                self.finding(
                    ctx,
                    cls,
                    f"lock-order cycle in {cls.name}: {pretty} "
                    f"(potential ABBA deadlock)",
                )
            )
        return findings
