"""``dtype-promotion``: hot paths stay in float32 (and never default
to numpy's float64).

The paper's memory model — the Eq. 1–2 estimator, the device ledger,
and the host-residency accounting — all assume
:data:`repro.config.FLOAT_DTYPE` (float32) elements.  A stray float64
array doubles the real footprint without the estimator noticing, which
is exactly the class of silent memory regression Buffalo exists to
prevent.  Two idioms are flagged in hot-path packages:

* array constructors whose dtype *defaults* to float64
  (``np.zeros/ones/empty/full/linspace`` without ``dtype=``);
* explicit float64 requests (``dtype=np.float64``, ``dtype=float``,
  ``dtype="float64"``, ``.astype(np.float64)``).

``graph/metrics.py`` (graph statistics) and ``baselines/`` (reference
systems) are deliberately outside the default scope — precision there
is a feature, not a footprint bug.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, LintRule, register_rule

#: Constructors whose missing-dtype default is float64, with the
#: positional index a dtype argument would occupy.
_DEFAULT_F64 = {
    "numpy.zeros": 1,
    "numpy.ones": 1,
    "numpy.empty": 1,
    "numpy.full": 2,
    "numpy.linspace": 5,
}

_F64_NAMES = frozenset({"numpy.float64", "numpy.double"})


def _is_float64_expr(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, ast.Constant) and node.value in (
        "float64",
        "double",
    ):
        return True
    if isinstance(node, ast.Name) and node.id == "float":
        return True  # builtin float == float64 as a numpy dtype
    resolved = ctx.imports.resolve(node)
    return resolved in _F64_NAMES


@register_rule
class DtypePromotionRule(LintRule):
    name = "dtype-promotion"
    description = (
        "no implicit or explicit float64 in hot paths (FLOAT_DTYPE is "
        "float32)"
    )
    invariant = (
        "the Eq. 1-2 estimator and the device ledger assume float32 "
        "elements; float64 doubles real memory invisibly"
    )
    default_scopes = (
        "src/repro/core",
        "src/repro/gnn",
        "src/repro/pipeline",
        "src/repro/nn",
        "src/repro/store",
        "src/repro/tensor",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            dtype_kw = next(
                (k.value for k in node.keywords if k.arg == "dtype"), None
            )
            if resolved in _DEFAULT_F64:
                dtype_pos = _DEFAULT_F64[resolved]
                has_dtype = dtype_kw is not None or len(node.args) > dtype_pos
                if not has_dtype:
                    short = resolved.replace("numpy.", "np.")
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{short}(...) without dtype defaults to "
                            f"float64; pass dtype=FLOAT_DTYPE (or an "
                            f"explicit integer dtype)",
                        )
                    )
                    continue
            if dtype_kw is not None and _is_float64_expr(dtype_kw, ctx):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "explicit float64 dtype in a hot path; use "
                        "repro.config.FLOAT_DTYPE (float32)",
                    )
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _is_float64_expr(node.args[0], ctx)
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        ".astype(float64) in a hot path doubles element "
                        "bytes; use repro.config.FLOAT_DTYPE",
                    )
                )
        return findings
