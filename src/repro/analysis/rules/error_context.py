"""``error-context``: store/dataset errors must name the offending path.

The store layer's whole error story is "a torn or corrupt store is
detected and *pinpointed*" — a :class:`~repro.errors.DatasetError` or
:class:`~repro.errors.StoreError` that doesn't say *which* file/
directory failed sends the operator grepping.  Every ``raise`` of these
types in path-handling code must interpolate a path-like value into the
message (an identifier containing ``path``/``root``/``file``/``dest``/
``source``/``dir``/``rel``/``shard``, e.g. an f-string placeholder).

Scope: the store layer and dataset file I/O — code that *has* a path in
hand.  Parameter-validation errors elsewhere (unknown dataset *names*
etc.) are out of scope by design.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, LintRule, register_rule

_ERROR_NAMES = frozenset({"DatasetError", "StoreError"})

_PATHY = ("path", "root", "file", "dest", "source", "dir", "rel", "shard")


def _identifiers(node: ast.AST) -> set[str]:
    """Every Name id and Attribute attr mentioned under ``node``."""
    out: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            out.add(child.id)
        elif isinstance(child, ast.Attribute):
            out.add(child.attr)
    return out


def _mentions_path(call: ast.Call) -> bool:
    for arg in list(call.args) + [k.value for k in call.keywords]:
        for ident in _identifiers(arg):
            lowered = ident.lower()
            if any(p in lowered for p in _PATHY):
                return True
    return False


@register_rule
class ErrorContextRule(LintRule):
    name = "error-context"
    description = (
        "DatasetError/StoreError raises in path-handling code must name "
        "the offending path"
    )
    invariant = (
        "a torn or corrupt store must be pinpointed to a file, not "
        "reported as an anonymous failure"
    )
    default_scopes = ("src/repro/store", "src/repro/datasets/io.py")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                continue  # re-raise of a caught instance
            func = exc.func
            error_name = None
            if isinstance(func, ast.Name) and func.id in _ERROR_NAMES:
                error_name = func.id
            elif (
                isinstance(func, ast.Attribute) and func.attr in _ERROR_NAMES
            ):
                error_name = func.attr
            if error_name is None:
                continue
            if not exc.args or not _mentions_path(exc):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{error_name} message does not name the offending "
                        f"path; interpolate the file/directory (e.g. "
                        f"f'{{path}}: ...')",
                    )
                )
        return findings
