"""Built-in Buffalo lint rules.

Importing this package registers every rule with the framework
registry (each module's rule classes carry ``@register_rule``).
See ``docs/analysis.md`` for the catalogue with rationale.
"""

from repro.analysis.rules import (  # noqa: F401  (register on import)
    concurrency,
    determinism,
    dtypes,
    error_context,
    hotalloc,
    lockcheck,
    memmap,
    metric_names,
    spans,
)
