"""``memmap-copy``: never silently materialize memmap-backed arrays.

The store serves the CSR graph and the feature shards as read-only
``np.memmap`` views precisely so opening a 100-GB dataset costs no host
RAM (PR 3).  One careless ``np.array(...)`` / ``.copy()`` /
``.astype(...)`` on such an array reads the whole file into memory —
the memory savings the Eq. 1–2 estimator accounts for evaporate
without any test noticing (correctness is unchanged!).  This rule
taints values that come from the mapped loaders and flags whole-array
materialization idioms on them.

Taint sources (intra-module, assignment-following):

* calls resolving to ``repro.store.layout.load_mapped`` or
  ``numpy.load`` with ``mmap_mode=``;
* ``self._shard(...)`` (FeatureStore's lazily mapped shards);
* reads of ``.indptr`` / ``.indices`` attributes (GraphStore's mapped
  CSR arrays);
* subscripts/attributes of tainted values (a slice of a memmap is
  still a memmap).

Flagged sinks on tainted values: ``np.array(x)`` (copy=True default),
``np.asarray(x, dtype=...)`` / ``np.ascontiguousarray(x, dtype=...)``
(dtype conversion forces a copy; the plain form is a view and allowed),
``np.sort(x)``, ``x.copy()``, ``x.astype(...)``, ``x.tolist()``.

Deliberate, *bounded* materializations (e.g. the hot-cache warm-up)
carry an annotated ``# repro: noqa[memmap-copy]`` explaining the bound.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, LintRule, register_rule

_MAPPED_ATTRS = frozenset({"indptr", "indices"})

_COPYING_METHODS = frozenset({"copy", "astype", "tolist"})

_COPYING_CALLS = frozenset({"numpy.array", "numpy.sort"})

_VIEW_UNLESS_DTYPE = frozenset({"numpy.asarray", "numpy.ascontiguousarray"})


def _is_taint_source(node: ast.Call, ctx: FileContext) -> bool:
    resolved = ctx.imports.resolve(node.func)
    if resolved == "repro.store.layout.load_mapped":
        return True
    if resolved == "numpy.load" and any(
        k.arg == "mmap_mode" for k in node.keywords
    ):
        return True
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "_shard"
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return True
    return False


class _TaintTracker(ast.NodeVisitor):
    """Collects tainted local names per lexical function scope."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.tainted: set[str] = set()

    def is_tainted(self, node: ast.AST) -> bool:
        # Unwrap subscripts/attributes: order[:n] of a memmap is still
        # a memmap; obj.indptr is a mapped array by convention.
        while isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        if isinstance(node, ast.Attribute):
            if node.attr in _MAPPED_ATTRS:
                return True
            return self.is_tainted(node.value)
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Call):
            return _is_taint_source(node, self.ctx)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if self.is_tainted(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.tainted.add(target.id)


@register_rule
class MemmapCopyRule(LintRule):
    name = "memmap-copy"
    description = (
        "flags whole-array materialization of memmap-backed store arrays"
    )
    invariant = (
        "the out-of-core store must never silently read a whole mapped "
        "file into host RAM; that erases the paper's memory savings"
    )
    default_scopes = ("src/repro/store", "src/repro/core/fastblock.py")

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        # Two passes: collect taints (assignments may precede or follow
        # use sites textually within a function; one extra pass reaches
        # the fixpoint for straight-line store code).
        tracker = _TaintTracker(ctx)
        for _ in range(2):
            tracker.visit(ctx.tree)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.imports.resolve(node.func)
            if resolved in _COPYING_CALLS and node.args:
                if tracker.is_tainted(node.args[0]):
                    short = resolved.replace("numpy.", "np.")
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{short}(...) copies a memmap-backed array "
                            f"into host RAM; operate on the view or slice "
                            f"first",
                        )
                    )
                continue
            if resolved in _VIEW_UNLESS_DTYPE and node.args:
                has_dtype = any(k.arg == "dtype" for k in node.keywords) or (
                    len(node.args) > 1
                )
                if has_dtype and tracker.is_tainted(node.args[0]):
                    short = resolved.replace("numpy.", "np.")
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{short}(..., dtype=...) on a memmap-backed "
                            f"array forces a full copy; slice before "
                            f"converting",
                        )
                    )
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _COPYING_METHODS
                and tracker.is_tainted(func.value)
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f".{func.attr}() materializes a memmap-backed "
                        f"array in host RAM; gather the needed rows "
                        f"instead",
                    )
                )
        return findings
