"""``span-leak``: every ``Tracer.span(...)`` must be context-managed.

A :class:`repro.obs.trace.Span` only emits its event (and pops the
tracer's thread-local stack) in ``__exit__``.  A span created but never
entered/exited silently corrupts the nesting of every later span on
that thread — the trace summarizer then mis-attributes child time.  So
``.span(...)`` results must be used as context managers: either
directly (``with tracer.span(...) as s:``) or assigned to a name that
is the context expression of a ``with`` statement (the
``Profiler.phase`` pattern: ``span = get_tracer().span(...)`` …
``with span:``).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, LintRule, register_rule


@register_rule
class SpanLeakRule(LintRule):
    name = "span-leak"
    description = (
        "Tracer.span(...) results must be used as context managers"
    )
    invariant = (
        "span events are only emitted on __exit__; a leaked span "
        "corrupts the thread's span nesting and the trace summary"
    )
    default_scopes = ("src/repro",)

    def check(self, ctx: FileContext) -> list[Finding]:
        direct: set[int] = set()      # Call nodes used as `with <call>:`
        with_names: set[str] = set()  # names used as `with <name>:`
        assigned_to: dict[int, str] = {}  # Call id -> assigned name
        span_calls: list[ast.Call] = []

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        direct.add(id(expr))
                    elif isinstance(expr, ast.Name):
                        with_names.add(expr.id)
            elif (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                assigned_to[id(node.value)] = node.targets[0].id
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
            ):
                span_calls.append(node)

        findings: list[Finding] = []
        for call in span_calls:
            if id(call) in direct:
                continue
            if assigned_to.get(id(call)) in with_names:
                continue
            findings.append(
                self.finding(
                    ctx,
                    call,
                    "Tracer.span(...) result is not used as a context "
                    "manager; the span never emits and corrupts span "
                    "nesting",
                )
            )
        return findings
