"""Whole-program concurrency rules (the ``--concurrency`` family).

Four :class:`~repro.analysis.framework.ProjectRule` subclasses share
one interprocedural model built by
:mod:`repro.analysis.concurrency` — the model is constructed once per
lint run (memoized on the :class:`ProjectContext`) and each rule
surfaces one finding family from it:

* ``lock-order`` — cycles in the global lock-acquisition graph;
* ``blocking-under-lock`` — blocking operations under a must-held lock;
* ``thread-escape`` — unguarded writes to attributes of thread-shared
  classes;
* ``lock-contract`` — violated ``@locks_required`` / ``# guarded-by``
  declarations.

The split keeps selection, suppression, and baselining per-family
(``# repro: noqa[thread-escape]`` does not silence a deadlock report)
while paying the analysis cost once.
"""

from __future__ import annotations

from repro.analysis.concurrency import ConcurrencyFinding, analyze_project
from repro.analysis.findings import Finding
from repro.analysis.framework import ProjectContext, ProjectRule, register_rule

__all__ = [
    "CONCURRENCY_RULES",
    "LockOrderRule",
    "BlockingUnderLockRule",
    "ThreadEscapeRule",
    "LockContractRule",
]

#: Rule names selected by ``repro lint --concurrency`` (plus the
#: per-file ``lock-discipline`` rule, which the CLI adds).
CONCURRENCY_RULES = (
    "lock-order",
    "blocking-under-lock",
    "thread-escape",
    "lock-contract",
)

_MODEL_KEY = "concurrency-findings"


def _project_findings(project: ProjectContext) -> list[ConcurrencyFinding]:
    findings = project.shared.get(_MODEL_KEY)
    if findings is None:
        files = [
            (ctx.relpath, ctx.tree, ctx.source, ctx.imports)
            for ctx in project.files
        ]
        findings = analyze_project(files)
        project.shared[_MODEL_KEY] = findings
    return findings


class _ConcurrencyRule(ProjectRule):
    default_scopes = ("src/repro", "tests")

    def check_project(self, project: ProjectContext) -> list[Finding]:
        return [
            Finding(
                path=f.path,
                line=f.line,
                col=f.col,
                rule=self.name,
                message=f.message,
            )
            for f in _project_findings(project)
            if f.rule == self.name
        ]


@register_rule
class LockOrderRule(_ConcurrencyRule):
    name = "lock-order"
    description = (
        "Cross-module lock-acquisition cycles (potential deadlocks) in "
        "the whole-program lock graph."
    )
    invariant = (
        "The union of every lock-acquisition order reachable through "
        "the call graph is acyclic: no two threads can wait on each "
        "other's locks."
    )


@register_rule
class BlockingUnderLockRule(_ConcurrencyRule):
    name = "blocking-under-lock"
    description = (
        "Blocking operations (queue waits, Condition/Event waits, "
        "file/memmap I/O, thread joins, kernel forwards) executed while "
        "a lock is guaranteed held, directly or via a blocking callee."
    )
    invariant = (
        "Critical sections stay O(bookkeeping): staging, serving, and "
        "prefetch threads never stall each other behind I/O or waits "
        "performed under a shared lock."
    )


@register_rule
class ThreadEscapeRule(_ConcurrencyRule):
    name = "thread-escape"
    description = (
        "Unguarded writes to attributes of classes reachable from "
        "threading.Thread targets or executor submissions."
    )
    invariant = (
        "Every mutable attribute of a thread-shared object is protected "
        "by one of the class's locks or an explicitly declared "
        "'# guarded-by:' discipline."
    )


@register_rule
class LockContractRule(_ConcurrencyRule):
    name = "lock-contract"
    description = (
        "Violations of declared concurrency contracts: @locks_required "
        "callees invoked without the lock, '# guarded-by: <lock>' "
        "attributes written without it, or guards naming unknown locks."
    )
    invariant = (
        "Declared locking contracts are machine-checked: an annotation "
        "that drifts from the code fails the lint gate instead of "
        "documenting a fiction."
    )
