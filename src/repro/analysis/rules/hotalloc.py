"""``hot-alloc``: kernel hot paths draw scratch from the Workspace arena.

The kernel layer exists to stop the aggregation hot path from paying
the allocator per bucket per micro-batch per epoch: scratch (positions,
gathered columns, gradient accumulators) comes from the
:class:`repro.kernels.workspace.Workspace` arena and is reused across
micro-batches.  A per-call ``np.zeros`` / ``np.empty`` (or their
``_like`` variants) inside a kernel-path function re-introduces exactly
the churn the arena removes — and a dtype-less one silently doubles to
float64 on top.

Flagged: calls to the allocating constructors inside any function or
method body under the rule's scopes.  Module-level allocations (caches
built once at import) are exempt, as is ``kernels/workspace.py`` itself
— the arena is the one legitimate owner of kernel scratch.

Intentional owned allocations — arrays that become ``Tensor.data`` or
are captured by backward closures, which must *not* live in the arena —
carry ``# repro: noqa[hot-alloc] <reason>``.

Threaded kernel execution does not change the discipline: pool workers
draw from their own named sub-arenas via
``workspace.for_worker(i).request(...)`` (created up front on the
compute thread by ``workspace.ensure_workers(n)``), which the rule
already recognizes as arena usage — ``request`` is not an allocating
constructor, whichever arena it is called on.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.framework import FileContext, LintRule, register_rule

_ALLOCATORS = frozenset(
    {
        "numpy.zeros",
        "numpy.empty",
        "numpy.zeros_like",
        "numpy.empty_like",
    }
)

#: The arena implementation allocates by design.
_EXEMPT_SUFFIXES = ("kernels/workspace.py",)


@register_rule
class HotAllocRule(LintRule):
    name = "hot-alloc"
    description = (
        "per-call np.zeros/np.empty in kernel hot paths; scratch "
        "belongs to the Workspace arena"
    )
    invariant = (
        "kernel scratch is arena-owned and reused across micro-batches; "
        "per-bucket allocations reintroduce the allocator churn the "
        "kernel layer removes"
    )
    default_scopes = (
        "src/repro/kernels",
        "src/repro/gnn/aggregators.py",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        if ctx.relpath.replace("\\", "/").endswith(_EXEMPT_SUFFIXES):
            return []
        findings: list[Finding] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                resolved = ctx.imports.resolve(node.func)
                if resolved not in _ALLOCATORS:
                    continue
                short = resolved.replace("numpy.", "np.")
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"per-call {short}(...) on the kernel hot path; "
                        f"request the buffer from the Workspace arena "
                        f"(worker code: workspace.for_worker(i)"
                        f".request(...)), or mark an owned autograd "
                        f"allocation with "
                        f"'# repro: noqa[hot-alloc] <reason>'",
                    )
                )
        return findings
