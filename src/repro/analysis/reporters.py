"""Lint output: human text, machine JSON, and SARIF 2.1.0.

The JSON document is a stable contract (version field, documented in
``docs/analysis.md`` and validated by
``tests/analysis/test_reporters.py::test_json_schema``)::

    {
      "version": 1,
      "ok": false,
      "rules": ["dtype-promotion", ...],
      "files_checked": 120,
      "cache_hits": 118,
      "suppressed": 3,
      "grandfathered": 0,
      "stale_baseline": [{"rule": ..., "path": ..., "message": ...}],
      "findings": [            // NEW findings only (the gate)
        {"path": "src/repro/x.py", "line": 10, "col": 4,
         "rule": "span-leak", "message": "..."}
      ],
      "all_findings": [...]    // including grandfathered, same shape
    }

:func:`render_sarif` emits SARIF 2.1.0 (one run, one result per *new*
finding, rule metadata under ``tool.driver.rules``) so GitHub code
scanning renders findings as inline PR annotations:
``repro lint --format sarif`` or ``--sarif <path>`` as a side output.
"""

from __future__ import annotations

import json

from repro.analysis.framework import get_rule
from repro.analysis.runner import LintResult

__all__ = ["REPORT_VERSION", "render_text", "render_json", "render_sarif"]

REPORT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """One ``file:line:col: rule: message`` line per new finding."""
    lines = [f.render() for f in result.new_findings]
    if result.stale_baseline:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(result.stale_baseline)}) — "
            f"rerun with --write-baseline to shrink the baseline:"
        )
        lines.extend(
            f"  {rule}: {path}: {message}"
            for rule, path, message in result.stale_baseline
        )
    for note in result.notes:
        lines.append(f"note: {note}")
    summary = (
        f"{len(result.new_findings)} finding(s) "
        f"({result.grandfathered} grandfathered, "
        f"{result.suppressed} suppressed) in {result.files_checked} file(s)"
    )
    if verbose:
        summary += (
            f"; {result.cache_hits} cached; rules: {', '.join(result.rules)}"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "rules": list(result.rules),
        "files_checked": result.files_checked,
        "cache_hits": result.cache_hits,
        "suppressed": result.suppressed,
        "grandfathered": result.grandfathered,
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in result.stale_baseline
        ],
        "findings": [f.to_dict() for f in result.new_findings],
        "all_findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 document over the *new* findings (the gate)."""
    rule_ids = sorted({f.rule for f in result.new_findings} | set(result.rules))
    rules_meta = []
    for rule_id in rule_ids:
        meta = {"id": rule_id}
        try:
            rule = get_rule(rule_id)
        except Exception:
            rule = None  # e.g. synthetic "parse-error" findings
        if rule is not None:
            meta["shortDescription"] = {"text": rule.description}
            if rule.invariant:
                meta["fullDescription"] = {"text": rule.invariant}
        else:
            meta["shortDescription"] = {"text": rule_id}
        rules_meta.append(meta)
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_ids.index(f.rule),
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in result.new_findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules_meta,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
