"""Lint output: human text and machine JSON.

The JSON document is a stable contract (version field, documented in
``docs/analysis.md`` and validated by
``tests/analysis/test_reporters.py::test_json_schema``)::

    {
      "version": 1,
      "ok": false,
      "rules": ["dtype-promotion", ...],
      "files_checked": 120,
      "cache_hits": 118,
      "suppressed": 3,
      "grandfathered": 0,
      "stale_baseline": [{"rule": ..., "path": ..., "message": ...}],
      "findings": [            // NEW findings only (the gate)
        {"path": "src/repro/x.py", "line": 10, "col": 4,
         "rule": "span-leak", "message": "..."}
      ],
      "all_findings": [...]    // including grandfathered, same shape
    }
"""

from __future__ import annotations

import json

from repro.analysis.runner import LintResult

__all__ = ["REPORT_VERSION", "render_text", "render_json"]

REPORT_VERSION = 1


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """One ``file:line:col: rule: message`` line per new finding."""
    lines = [f.render() for f in result.new_findings]
    if result.stale_baseline:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(result.stale_baseline)}) — "
            f"rerun with --write-baseline to shrink the baseline:"
        )
        lines.extend(
            f"  {rule}: {path}: {message}"
            for rule, path, message in result.stale_baseline
        )
    for note in result.notes:
        lines.append(f"note: {note}")
    summary = (
        f"{len(result.new_findings)} finding(s) "
        f"({result.grandfathered} grandfathered, "
        f"{result.suppressed} suppressed) in {result.files_checked} file(s)"
    )
    if verbose:
        summary += (
            f"; {result.cache_hits} cached; rules: {', '.join(result.rules)}"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": REPORT_VERSION,
        "ok": result.ok,
        "rules": list(result.rules),
        "files_checked": result.files_checked,
        "cache_hits": result.cache_hits,
        "suppressed": result.suppressed,
        "grandfathered": result.grandfathered,
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in result.stale_baseline
        ],
        "findings": [f.to_dict() for f in result.new_findings],
        "all_findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
