"""Runtime race detection: :class:`RaceSentinel`.

The static lock-discipline pass sees the code; the sentinel sees the
*execution*.  It instruments a live object so that every attribute
mutation records the mutating thread, and a mutation from a second
thread that does **not** hold the object's lock raises
:class:`RaceError` at the exact write — turning a once-a-week torn
counter into a deterministic test failure.  The threaded prefetch /
pipeline tests enable it around :class:`~repro.store.feature_store
.FeatureStore` so any future unguarded write fails loudly in CI.

Mechanics (no object cooperation required):

* the object's ``threading.Lock``/``RLock`` attribute is replaced with
  a :class:`TrackedLock` proxy that records the owning thread;
* the object's class is swapped for a dynamically created subclass
  whose ``__setattr__``/``__delattr__`` consult the sentinel before
  delegating, so *internal* ``self.x = ...`` writes are checked too;
* a write is legal when (a) the tracked lock is held by the writing
  thread, or (b) the writer is the thread that attached the sentinel
  (the *home* thread) and no other thread has ever written that
  attribute — the single-threaded construction/teardown phases every
  threaded object has.

``RaceSentinel(obj)`` is also a context manager; on exit the original
class and lock are restored.  Overhead is one dict lookup per setattr,
so it is strictly opt-in (tests), never production-path.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import ReproError

__all__ = ["RaceError", "RaceSentinel", "TrackedLock"]


class RaceError(ReproError):
    """An unsynchronized cross-thread mutation was detected."""


class TrackedLock:
    """Lock proxy recording the owning thread (supports Lock and RLock)."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self._owner: int | None = None
        self._depth = 0

    def acquire(self, *args, **kwargs) -> bool:
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self._owner = threading.get_ident()
            self._depth += 1
        return acquired

    def release(self) -> None:
        self._depth -= 1
        if self._depth <= 0:
            self._owner = None
            self._depth = 0
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()


class RaceSentinel:
    """Attach per-mutation owner-thread checking to one object.

    Args:
        obj: the object to instrument (a normal Python object; classes
            with ``__slots__`` are not supported).
        lock_attr: name of the object's lock attribute (replaced by a
            :class:`TrackedLock` for the sentinel's lifetime).
        raise_on_race: raise :class:`RaceError` at the offending write
            (default); ``False`` only records into :attr:`violations`
            (for soak-style assertions at the end of a test).
        ignore: attribute names exempt from checking (scratch state the
            caller knows is thread-confined).

    Usage::

        with RaceSentinel(store, lock_attr="_lock") as sentinel:
            ... run threaded pipeline ...
        assert sentinel.violations == []
    """

    _SENTINEL_FIELD = "__race_sentinel__"

    def __init__(
        self,
        obj: Any,
        *,
        lock_attr: str = "_lock",
        raise_on_race: bool = True,
        ignore: tuple[str, ...] = (),
    ) -> None:
        self.obj = obj
        self.lock_attr = lock_attr
        self.raise_on_race = raise_on_race
        self.ignore = frozenset(ignore) | {self._SENTINEL_FIELD, lock_attr}
        self.home_thread = threading.get_ident()
        self.violations: list[str] = []
        self._writers: dict[str, set[int]] = {}
        self._original_class: type | None = None
        self._original_lock = None
        self._tracked: TrackedLock | None = None

    # ------------------------------------------------------------------
    def attach(self) -> "RaceSentinel":
        if getattr(self.obj, self._SENTINEL_FIELD, None) is not None:
            raise RaceError(
                f"{type(self.obj).__name__} already has a RaceSentinel"
            )
        lock = getattr(self.obj, self.lock_attr, None)
        if lock is None:
            raise RaceError(
                f"{type(self.obj).__name__} has no lock attribute "
                f"{self.lock_attr!r} to track"
            )
        self._original_lock = lock
        self._tracked = TrackedLock(lock)
        cls = type(self.obj)
        self._original_class = cls
        sentinel = self

        def checked_setattr(instance, name, value):
            sentinel._check(name)
            object.__setattr__(instance, name, value)

        def checked_delattr(instance, name):
            sentinel._check(name)
            object.__delattr__(instance, name)

        instrumented = type(
            f"Sentinel{cls.__name__}",
            (cls,),
            {
                "__setattr__": checked_setattr,
                "__delattr__": checked_delattr,
            },
        )
        object.__setattr__(self.obj, self.lock_attr, self._tracked)
        object.__setattr__(self.obj, self._SENTINEL_FIELD, self)
        self.obj.__class__ = instrumented
        return self

    def detach(self) -> None:
        if self._original_class is None:
            return
        self.obj.__class__ = self._original_class
        object.__setattr__(self.obj, self.lock_attr, self._original_lock)
        object.__delattr__(self.obj, self._SENTINEL_FIELD)
        self._original_class = None

    def __enter__(self) -> "RaceSentinel":
        return self.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def _check(self, name: str) -> None:
        if name in self.ignore:
            return
        ident = threading.get_ident()
        writers = self._writers.setdefault(name, set())
        if self._tracked is not None and (
            self._tracked.held_by_current_thread()
        ):
            writers.add(ident)
            return
        # Lock not held: legal only during the single-threaded phase —
        # the home thread writing an attribute no other thread has
        # written.
        if ident == self.home_thread and writers <= {self.home_thread}:
            writers.add(ident)
            return
        message = (
            f"unsynchronized cross-thread write to "
            f"{self._original_class.__name__}.{name}: thread {ident} "
            f"mutated it without holding "
            f"'{self.lock_attr}' (prior writers: {sorted(writers)}, "
            f"home thread: {self.home_thread})"
        )
        self.violations.append(message)
        if self.raise_on_race:
            raise RaceError(message)
        writers.add(ident)
