"""Rule base class, rule registry, per-file context, and suppression.

A rule is a class with a ``name``, a ``description``, a default path
``scopes`` tuple, and a ``check(ctx)`` method returning
:class:`~repro.analysis.findings.Finding` objects.  Registration is a
decorator; the CLI and runner discover rules through the registry, so
adding a rule is one module with one decorated class (see
``docs/analysis.md`` § "Adding a rule").

Suppression mirrors flake8's ``noqa`` but is namespaced so it can never
collide with other tools:

* ``# repro: noqa[rule-a,rule-b]`` — suppress those rules on this line;
* ``# repro: noqa`` — suppress every rule on this line;
* ``# repro: noqa-file[rule-a]`` — suppress a rule for the whole file
  (the marker may sit on any line, conventionally near the top).

Suppressions should carry a trailing explanation, e.g.::

    hot_ids = np.asarray(order[:n], dtype=...)  # repro: noqa[memmap-copy] bounded by hot-cache budget
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

from repro.analysis.astutils import ImportMap
from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding
from repro.errors import ReproError

__all__ = [
    "AnalysisError",
    "FileContext",
    "LintRule",
    "ProjectContext",
    "ProjectRule",
    "all_rules",
    "get_rule",
    "register_rule",
    "rule_names",
    "parse_suppressions",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\-\s]+)\])?"
)
_NOQA_FILE_RE = re.compile(
    r"#\s*repro:\s*noqa-file\[(?P<rules>[A-Za-z0-9_,\-\s]+)\]"
)

#: Sentinel meaning "every rule" in a suppression set.
ALL_RULES = "*"


class AnalysisError(ReproError):
    """Invalid analysis usage (unknown rule, unparseable target, ...)."""


@dataclass
class Suppressions:
    """Parsed ``# repro: noqa`` markers of one file."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    whole_file: frozenset[str] = frozenset()

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule in self.whole_file or ALL_RULES in self.whole_file:
            return True
        rules = self.by_line.get(finding.line)
        if rules is None:
            return False
        return finding.rule in rules or ALL_RULES in rules


def parse_suppressions(source: str) -> Suppressions:
    """Scan physical lines for noqa markers (comments only in practice:
    the marker syntax is a comment, so string-literal false hits would
    need to embed a ``#`` mid-string — accepted as vanishingly rare)."""
    by_line: dict[int, frozenset[str]] = {}
    whole_file: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro:" not in line:
            continue
        file_match = _NOQA_FILE_RE.search(line)
        if file_match:
            whole_file.update(
                r.strip() for r in file_match.group("rules").split(",")
            )
            continue
        match = _NOQA_RE.search(line)
        if match:
            rules = match.group("rules")
            if rules is None:
                by_line[lineno] = frozenset({ALL_RULES})
            else:
                by_line[lineno] = frozenset(
                    r.strip() for r in rules.split(",") if r.strip()
                )
    return Suppressions(by_line=by_line, whole_file=frozenset(whole_file))


@dataclass
class FileContext:
    """Everything a rule needs about one source file (parsed once)."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    config: LintConfig

    @cached_property
    def imports(self) -> ImportMap:
        # repro-relative module package for resolving relative imports.
        parts = Path(self.relpath).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        package = ".".join(parts[:-1])
        return ImportMap(self.tree, package=package)

    @cached_property
    def suppressions(self) -> Suppressions:
        return parse_suppressions(self.source)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class LintRule:
    """Base class for lint rules.

    Subclasses set :attr:`name` (kebab-case, stable — it is the
    suppression/selection key), :attr:`description`, the paper
    :attr:`invariant` the rule protects, and :attr:`default_scopes`
    (repo-relative path prefixes), then implement :meth:`check`.
    """

    name: str = ""
    description: str = ""
    invariant: str = ""
    default_scopes: tuple[str, ...] = ("src/repro",)
    #: Bumped when a rule's semantics change; part of the baseline
    #: fingerprint, so old suppressions don't survive a rule rewrite.
    version: int = 1

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return ctx.finding(self.name, node, message)


@dataclass
class ProjectContext:
    """Shared state for whole-program rules: every in-scope file, parsed
    once, plus a scratch dict rules use to share expensive models (the
    concurrency pass builds its call graph once for all four rules)."""

    files: list[FileContext]
    config: LintConfig
    shared: dict = field(default_factory=dict)


class ProjectRule(LintRule):
    """A rule that needs the whole project, not one file at a time.

    The runner calls :meth:`check_project` once per run with every
    in-scope file; findings are then scoped, suppressed, and baselined
    exactly like per-file findings.  ``check`` is a no-op so project
    rules compose with the per-file loop without special-casing.
    """

    def check(self, ctx: FileContext) -> list[Finding]:
        return []

    def check_project(self, project: ProjectContext) -> list[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, LintRule] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule (by instance) to the registry."""
    if not cls.name:
        raise AnalysisError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise AnalysisError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def _ensure_rules_loaded() -> None:
    # Importing the package registers every built-in rule exactly once.
    import repro.analysis.rules  # noqa: F401  (import-for-side-effect)


def all_rules() -> list[LintRule]:
    """Every registered rule, sorted by name."""
    _ensure_rules_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def rule_names() -> list[str]:
    _ensure_rules_loaded()
    return sorted(_REGISTRY)


def get_rule(name: str) -> LintRule:
    _ensure_rules_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise AnalysisError(f"unknown lint rule {name!r} (known: {known})")
