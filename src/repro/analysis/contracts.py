"""Concurrency contract vocabulary: ``@locks_required`` and guarded-by.

The interprocedural concurrency pass (:mod:`repro.analysis.concurrency`)
verifies two kinds of declared invariants instead of guessing them:

* ``@locks_required("_lock")`` — the decorated method assumes the named
  instance lock(s) are already held by the caller.  The static pass
  (a) seeds the method's entry held-set with the declaration so writes
  in its body count as guarded, and (b) checks every resolved call site
  actually holds the lock(s), flagging the ones that don't
  (construction-phase callers are exempt: objects are published to
  other threads only after ``__init__`` returns).

* ``# guarded-by: <guard>`` — a trailing comment on the line that
  first assigns ``self.attr`` (conventionally in ``__init__``), naming
  the discipline that protects the attribute.  When ``<guard>`` names a
  lock attribute of the same class (``_lock`` or ``self._lock``), every
  post-construction mutation must hold that lock.  Any other text
  (e.g. ``caller-thread (worker joined before rearm)`` or
  ``event hand-off (_done barrier)``) records a documented non-lock
  discipline: the attribute is exempt from the escape check, but the
  reasoning is greppable and reviewed instead of implicit.

The decorator is metadata-only at runtime — zero overhead, and the
function object is returned unchanged so bound-method identity (used
e.g. by ``FeatureStore``'s staged-consumed hook comparison) is
preserved.  :func:`assert_holds` is an optional runtime spot-check for
tests and debugging.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["LOCKS_REQUIRED_ATTR", "locks_required", "assert_holds"]

#: Attribute under which the declared lock names are stored.
LOCKS_REQUIRED_ATTR = "__locks_required__"


def locks_required(*lock_attrs: str):
    """Declare that callers must hold ``self.<attr>`` for each name.

    Usage::

        @locks_required("_lock")
        def _note_resident(self, transient_bytes: int) -> None:
            ...  # body may assume self._lock is held

    Names are instance-attribute names relative to ``self``; a leading
    ``self.`` is accepted and stripped.
    """
    cleaned = []
    for attr in lock_attrs:
        name = str(attr)
        if name.startswith("self."):
            name = name[len("self."):]
        if not name.isidentifier():
            raise ReproError(
                f"locks_required expects lock attribute names, got {attr!r}"
            )
        cleaned.append(name)
    if not cleaned:
        raise ReproError("locks_required needs at least one lock name")

    def decorate(func):
        setattr(func, LOCKS_REQUIRED_ATTR, tuple(cleaned))
        return func

    return decorate


def assert_holds(obj, lock_attr: str = "_lock") -> None:
    """Runtime spot-check: raise unless ``obj.<lock_attr>`` is held.

    Works for ``threading.Lock``/``RLock`` (``locked()``); best-effort
    no-op for lock types that cannot report their state.
    """
    lock = getattr(obj, lock_attr)
    locked = getattr(lock, "locked", None)
    if callable(locked) and not locked():
        raise ReproError(
            f"{type(obj).__name__}.{lock_attr} must be held here "
            f"(declared via locks_required/guarded-by)"
        )
