"""The unit of lint output: one :class:`Finding` per rule violation.

Findings are plain values so the framework can sort, serialize,
deduplicate, and diff them against a baseline without touching the AST
again.  The *baseline key* deliberately omits the line/column: a
grandfathered finding keeps matching its baseline entry when unrelated
edits shift it a few lines, but any change to its message (which
embeds the offending symbol) retires the entry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        path: repo-relative POSIX path of the offending file.
        line: 1-based line of the violation.
        col: 0-based column of the violation.
        rule: registered rule name (e.g. ``no-nondeterminism``).
        message: human-readable description naming the symbol involved.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def baseline_key(self) -> tuple[str, str, str]:
        """Location-insensitive identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        """``file:line:col: rule: message`` (clickable in editors/CI)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        return cls(
            path=str(raw["path"]),
            line=int(raw["line"]),
            col=int(raw["col"]),
            rule=str(raw["rule"]),
            message=str(raw["message"]),
        )
