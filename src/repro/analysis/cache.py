"""Content-hash cache for per-file and whole-program lint results.

Parsing + rule-walking the whole tree is the dominant lint cost, and
almost every file is unchanged between runs.  The cache maps each file
to ``(key, findings, deps)`` where the key is a SHA-256 over

* the file's bytes,
* the names of the rules that apply to it (selection changes re-lint),
* a *framework salt*: a hash of every ``repro.analysis`` source file,
  so editing any rule or the framework itself invalidates everything.

``deps`` records the content hashes of the project files the entry's
file *imports* (version 2): per-file hashing alone is insufficient once
rules resolve imports — renaming a symbol in ``repro.store.layout``
must re-lint ``feature_store.py`` even though its bytes are unchanged.
An entry whose dependency hashes drifted is treated as a miss.

Whole-program passes cache under the reserved :data:`PROJECT_KEY`
pseudo-path, keyed on the hash of *every* in-scope ``(path, content)``
pair: any file appearing, changing, or vanishing dirties the call graph
and forces full re-analysis — there is no sound partial replay for a
cross-file fixpoint.

Entries store pre-baseline, post-suppression findings — suppression
depends only on file content (in the key); the baseline is applied
globally after cache assembly, so baseline edits never invalidate.

CI persists the cache file across runs keyed on the source tree hash
(see ``.github/workflows/ci.yml``); locally it makes ``repro lint``
effectively incremental.  Corrupt or version-skewed caches are
discarded wholesale, never trusted partially.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = [
    "LintCache",
    "PROJECT_KEY",
    "content_hash",
    "file_key",
    "framework_salt",
    "project_key",
]

CACHE_VERSION = 2

#: Reserved pseudo-path for whole-program pass results ("//" cannot
#: occur in a normalized repo-relative path).
PROJECT_KEY = "//project"

_salt: str | None = None


def framework_salt() -> str:
    """Hash of the analysis package's own sources (memoized)."""
    global _salt
    if _salt is None:
        digest = hashlib.sha256()
        package_root = Path(__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(path.read_bytes())
        _salt = digest.hexdigest()
    return _salt


def content_hash(source_bytes: bytes) -> str:
    return hashlib.sha256(source_bytes).hexdigest()


def file_key(source_bytes: bytes, rule_names: tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    digest.update(framework_salt().encode())
    digest.update("\x00".join(rule_names).encode())
    digest.update(b"\x00")
    digest.update(source_bytes)
    return digest.hexdigest()


def project_key(
    hashes: dict[str, str], rule_names: tuple[str, ...]
) -> str:
    """Key for a whole-program pass over files ``{relpath: content_hash}``."""
    digest = hashlib.sha256()
    digest.update(framework_salt().encode())
    digest.update("\x00".join(rule_names).encode())
    for relpath in sorted(hashes):
        digest.update(b"\x00")
        digest.update(relpath.encode())
        digest.update(b"\x00")
        digest.update(hashes[relpath].encode())
    return digest.hexdigest()


class LintCache:
    """Load-modify-save wrapper around the on-disk cache file."""

    def __init__(self, path: str | Path, *, enabled: bool = True) -> None:
        self.path = Path(path)
        self.enabled = enabled
        self._entries: dict[str, dict] = {}
        self._dirty = False
        if enabled:
            self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
            if raw.get("version") != CACHE_VERSION:
                return
            entries = raw.get("entries")
            if isinstance(entries, dict):
                self._entries = entries
        except (json.JSONDecodeError, OSError, TypeError, ValueError):
            self._entries = {}  # corrupt cache: start over

    def get(
        self,
        relpath: str,
        key: str,
        content_hashes: dict[str, str] | None = None,
    ) -> list[Finding] | None:
        """Cached findings, or None on any mismatch.

        ``content_hashes`` maps every in-scope file to its current
        content hash; the entry's recorded import dependencies must all
        still match, otherwise a dependency changed under an unchanged
        file and the cross-file analyses may now disagree.
        """
        if not self.enabled:
            return None
        entry = self._entries.get(relpath)
        if not entry or entry.get("key") != key:
            return None
        deps = entry.get("deps", {})
        if deps:
            if content_hashes is None:
                return None
            for dep, dep_hash in deps.items():
                if content_hashes.get(dep) != dep_hash:
                    return None
        try:
            return [Finding.from_dict(f) for f in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    def put(
        self,
        relpath: str,
        key: str,
        findings: list[Finding],
        deps: dict[str, str] | None = None,
    ) -> None:
        if not self.enabled:
            return
        self._entries[relpath] = {
            "key": key,
            "findings": [f.to_dict() for f in findings],
            "deps": dict(deps or {}),
        }
        self._dirty = True

    def prune(self, live_relpaths: set[str]) -> None:
        """Drop entries for files that no longer exist / are out of scope."""
        dead = set(self._entries) - live_relpaths - {PROJECT_KEY}
        if dead:
            for relpath in dead:
                del self._entries[relpath]
            self._dirty = True

    def save(self) -> None:
        if not (self.enabled and self._dirty):
            return
        payload = {"version": CACHE_VERSION, "entries": self._entries}
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(self.path)
        self._dirty = False
