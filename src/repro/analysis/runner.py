"""Lint orchestration: walk files, run rules, cache, baseline, report.

:func:`run_lint` is the single entry point shared by the CLI and the
tests.  Per file it runs only the rules whose (possibly configured)
scope covers the file, applies ``# repro: noqa`` suppressions, and
consults the content-hash cache; the committed baseline is subtracted
at the end, so :attr:`LintResult.new_findings` is exactly what the CI
gate fails on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.cache import LintCache, file_key
from repro.analysis.config import LintConfig, load_config
from repro.analysis.findings import Finding
from repro.analysis.framework import (
    AnalysisError,
    FileContext,
    LintRule,
    all_rules,
    get_rule,
)

__all__ = ["LintResult", "run_lint", "iter_source_files"]


@dataclass
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: post-suppression findings, including grandfathered
            ones (sorted by location).
        new_findings: findings not covered by the baseline — the gate.
        grandfathered: count of findings matched by baseline entries.
        stale_baseline: baseline keys whose finding no longer occurs.
        suppressed: count of findings silenced by noqa markers.
        files_checked: number of files linted (cache hits included).
        cache_hits: files served from the content-hash cache.
        rules: names of the rules that ran.
        notes: non-fatal configuration notes.
        config: the resolved configuration the run used.
    """

    findings: list[Finding] = field(default_factory=list)
    new_findings: list[Finding] = field(default_factory=list)
    grandfathered: int = 0
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    cache_hits: int = 0
    rules: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()
    config: LintConfig | None = None

    @property
    def ok(self) -> bool:
        """True when the gate passes (no new findings)."""
        return not self.new_findings


def iter_source_files(config: LintConfig) -> list[Path]:
    """Every ``.py`` file under the configured paths, minus excludes."""
    seen: set[Path] = set()
    out: list[Path] = []
    for entry in config.paths:
        base = config.root / entry
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            raise AnalysisError(f"lint path does not exist: {base}")
        for path in candidates:
            rel = path.relative_to(config.root).as_posix()
            if config.excluded(rel) or path in seen:
                continue
            seen.add(path)
            out.append(path)
    return out


def _lint_one(
    path: Path,
    relpath: str,
    rules: list[LintRule],
    config: LintConfig,
) -> tuple[list[Finding], int]:
    """Lint one file; returns (kept findings, suppressed count)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=relpath,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="parse-error",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )
    ctx = FileContext(
        path=path, relpath=relpath, source=source, tree=tree, config=config
    )
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(ctx))
    kept = [f for f in raw if not ctx.suppressions.suppresses(f)]
    return sorted(kept), len(raw) - len(kept)


def run_lint(
    root: str | Path,
    *,
    paths: list[str] | None = None,
    rules: list[str] | None = None,
    config: LintConfig | None = None,
    baseline_path: str | None = None,
    use_cache: bool = True,
    use_baseline: bool = True,
) -> LintResult:
    """Lint the repository at ``root``; see :class:`LintResult`.

    Args:
        root: repository root (where ``pyproject.toml`` lives).
        paths: override the configured lint roots (repo-relative).
        rules: run only these rule names (default: config ``select``,
            else every registered rule).
        config: pre-built configuration (tests); read from
            ``pyproject.toml`` when omitted.
        baseline_path: override the configured baseline file.
        use_cache: consult/update the content-hash cache file.
        use_baseline: subtract the committed baseline from the gate.
    """
    config = config or load_config(root)
    if paths:
        config.paths = tuple(paths)
    if baseline_path:
        config.baseline = baseline_path
    selected = rules if rules is not None else list(config.select)
    active = (
        [get_rule(name) for name in selected] if selected else all_rules()
    )
    active.sort(key=lambda r: r.name)

    result = LintResult(
        rules=tuple(r.name for r in active),
        notes=config.notes,
        config=config,
    )
    cache = LintCache(config.root / config.cache, enabled=use_cache)
    live: set[str] = set()

    for path in iter_source_files(config):
        relpath = path.relative_to(config.root).as_posix()
        live.add(relpath)
        applicable = [
            r
            for r in active
            if config.in_scope(
                relpath, config.scope_for(r.name, r.default_scopes)
            )
        ]
        result.files_checked += 1
        if not applicable:
            continue
        key = file_key(
            path.read_bytes(), tuple(r.name for r in applicable)
        )
        cached = cache.get(relpath, key)
        if cached is not None:
            result.cache_hits += 1
            result.findings.extend(cached)
            continue
        findings, suppressed = _lint_one(path, relpath, applicable, config)
        result.suppressed += suppressed
        cache.put(relpath, key, findings)
        result.findings.extend(findings)

    cache.prune(live)
    cache.save()
    result.findings.sort()

    if use_baseline:
        baseline = load_baseline(config.root / config.baseline)
        result.new_findings, result.grandfathered, result.stale_baseline = (
            apply_baseline(result.findings, baseline)
        )
    else:
        result.new_findings = list(result.findings)
    return result
