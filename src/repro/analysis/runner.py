"""Lint orchestration: walk files, run rules, cache, baseline, report.

:func:`run_lint` is the single entry point shared by the CLI and the
tests.  Per file it runs only the rules whose (possibly configured)
scope covers the file, applies ``# repro: noqa`` suppressions, and
consults the content-hash cache; whole-program rules
(:class:`~repro.analysis.framework.ProjectRule`) then run once over
every parsed file, with their own cache entry keyed on the hash of the
*entire* in-scope file set — any file changing dirties the call graph,
so cross-file results are never replayed stale.  The committed baseline
is subtracted at the end, so :attr:`LintResult.new_findings` is exactly
what the CI gate fails on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import (
    apply_baseline,
    baseline_fingerprints,
    load_baseline,
)
from repro.analysis.cache import (
    PROJECT_KEY,
    LintCache,
    content_hash,
    file_key,
    project_key,
)
from repro.analysis.config import LintConfig, load_config
from repro.analysis.findings import Finding
from repro.analysis.framework import (
    AnalysisError,
    FileContext,
    LintRule,
    ProjectContext,
    ProjectRule,
    all_rules,
    get_rule,
)

__all__ = ["LintResult", "run_lint", "iter_source_files"]


@dataclass
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: post-suppression findings, including grandfathered
            ones (sorted by location).
        new_findings: findings not covered by the baseline — the gate.
        grandfathered: count of findings matched by baseline entries.
        stale_baseline: baseline keys whose finding no longer occurs.
        invalidated_baseline: baseline keys dropped because their rule's
            fingerprint (version/source/config) no longer matches.
        suppressed: count of findings silenced by noqa markers.
        files_checked: number of files linted (cache hits included).
        cache_hits: files served from the content-hash cache.
        project_cache_hit: whole-program pass served from cache.
        rules: names of the rules that ran.
        fingerprints: per-rule baseline fingerprints of this run (what
            ``--write-baseline`` stamps into the file).
        notes: non-fatal configuration notes.
        config: the resolved configuration the run used.
    """

    findings: list[Finding] = field(default_factory=list)
    new_findings: list[Finding] = field(default_factory=list)
    grandfathered: int = 0
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    invalidated_baseline: list[tuple[str, str, str]] = field(
        default_factory=list
    )
    suppressed: int = 0
    files_checked: int = 0
    cache_hits: int = 0
    project_cache_hit: bool = False
    rules: tuple[str, ...] = ()
    fingerprints: dict[str, str] = field(default_factory=dict)
    notes: tuple[str, ...] = ()
    config: LintConfig | None = None

    @property
    def ok(self) -> bool:
        """True when the gate passes (no new findings)."""
        return not self.new_findings


def iter_source_files(config: LintConfig) -> list[Path]:
    """Every ``.py`` file under the configured paths, minus excludes."""
    seen: set[Path] = set()
    out: list[Path] = []
    for entry in config.paths:
        base = config.root / entry
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            raise AnalysisError(f"lint path does not exist: {base}")
        for path in candidates:
            rel = path.relative_to(config.root).as_posix()
            if config.excluded(rel) or path in seen:
                continue
            seen.add(path)
            out.append(path)
    return out


def _relpath_module(relpath: str) -> str:
    parts = relpath[:-3].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _import_deps(
    ctx: FileContext, modules: dict[str, str], own_relpath: str
) -> dict[str, str]:
    """Project files this file imports, as ``{relpath: placeholder}``
    (hashes filled by the caller)."""
    deps: set[str] = set()
    for target in ctx.imports.aliases.values():
        parts = target.split(".")
        for cut in range(len(parts), 0, -1):
            relpath = modules.get(".".join(parts[:cut]))
            if relpath is not None:
                if relpath != own_relpath:
                    deps.add(relpath)
                break
    return {d: "" for d in sorted(deps)}


def _parse_error_finding(relpath: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=relpath,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule="parse-error",
        message=f"file does not parse: {exc.msg}",
    )


def run_lint(
    root: str | Path,
    *,
    paths: list[str] | None = None,
    rules: list[str] | None = None,
    config: LintConfig | None = None,
    baseline_path: str | None = None,
    use_cache: bool = True,
    use_baseline: bool = True,
) -> LintResult:
    """Lint the repository at ``root``; see :class:`LintResult`.

    Args:
        root: repository root (where ``pyproject.toml`` lives).
        paths: override the configured lint roots (repo-relative).
        rules: run only these rule names (default: config ``select``,
            else every registered rule).
        config: pre-built configuration (tests); read from
            ``pyproject.toml`` when omitted.
        baseline_path: override the configured baseline file.
        use_cache: consult/update the content-hash cache file.
        use_baseline: subtract the committed baseline from the gate.
    """
    config = config or load_config(root)
    if paths:
        config.paths = tuple(paths)
    if baseline_path:
        config.baseline = baseline_path
    selected = rules if rules is not None else list(config.select)
    active = (
        [get_rule(name) for name in selected] if selected else all_rules()
    )
    active.sort(key=lambda r: r.name)
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]

    result = LintResult(
        rules=tuple(r.name for r in active),
        notes=config.notes,
        config=config,
    )
    cache = LintCache(config.root / config.cache, enabled=use_cache)

    # Pass 0: read every in-scope file once; content hashes feed both the
    # per-file dependency checks and the whole-program cache key.
    entries: list[tuple[Path, str, bytes]] = []
    hashes: dict[str, str] = {}
    for path in iter_source_files(config):
        relpath = path.relative_to(config.root).as_posix()
        data = path.read_bytes()
        entries.append((path, relpath, data))
        hashes[relpath] = content_hash(data)
    modules = {_relpath_module(rel): rel for _, rel, _ in entries}
    live = set(hashes)

    contexts: dict[str, FileContext | None] = {}
    parse_errors: dict[str, Finding] = {}

    def get_context(path: Path, relpath: str, data: bytes) -> FileContext | None:
        if relpath in contexts:
            return contexts[relpath]
        source = data.decode("utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            contexts[relpath] = None
            parse_errors[relpath] = _parse_error_finding(relpath, exc)
            return None
        ctx = FileContext(
            path=path, relpath=relpath, source=source, tree=tree,
            config=config,
        )
        contexts[relpath] = ctx
        return ctx

    # Per-file stage.
    for path, relpath, data in entries:
        applicable = [
            r
            for r in file_rules
            if config.in_scope(
                relpath, config.scope_for(r.name, r.default_scopes)
            )
        ]
        result.files_checked += 1
        if not applicable:
            continue
        key = file_key(data, tuple(r.name for r in applicable))
        cached = cache.get(relpath, key, hashes)
        if cached is not None:
            result.cache_hits += 1
            result.findings.extend(cached)
            continue
        ctx = get_context(path, relpath, data)
        if ctx is None:
            findings = [parse_errors[relpath]]
            cache.put(relpath, key, findings)
            result.findings.extend(findings)
            continue
        raw: list[Finding] = []
        for rule in applicable:
            raw.extend(rule.check(ctx))
        kept = sorted(
            f for f in raw if not ctx.suppressions.suppresses(f)
        )
        result.suppressed += len(raw) - len(kept)
        deps = _import_deps(ctx, modules, relpath)
        for dep in deps:
            deps[dep] = hashes[dep]
        cache.put(relpath, key, kept, deps)
        result.findings.extend(kept)

    # Whole-program stage: one model over every parseable in-scope file,
    # cached as a unit — any file change dirties the call graph.
    if project_rules:
        pkey = project_key(hashes, tuple(r.name for r in project_rules))
        cached = cache.get(PROJECT_KEY, pkey)
        if cached is not None:
            result.project_cache_hit = True
            result.findings.extend(cached)
        else:
            files = [
                ctx
                for path, relpath, data in entries
                if (ctx := get_context(path, relpath, data)) is not None
            ]
            project = ProjectContext(files=files, config=config)
            raw = []
            for rule in project_rules:
                scope = config.scope_for(rule.name, rule.default_scopes)
                raw.extend(
                    f
                    for f in rule.check_project(project)
                    if config.in_scope(f.path, scope)
                )
            kept = []
            for f in raw:
                ctx = contexts.get(f.path)
                if ctx is not None and ctx.suppressions.suppresses(f):
                    result.suppressed += 1
                else:
                    kept.append(f)
            kept.sort()
            cache.put(PROJECT_KEY, pkey, kept)
            result.findings.extend(kept)

    cache.prune(live)
    cache.save()
    result.findings.sort()

    result.fingerprints = baseline_fingerprints(active, config)
    if use_baseline:
        baseline, invalidated = load_baseline(
            config.root / config.baseline, result.fingerprints
        )
        result.invalidated_baseline = invalidated
        result.new_findings, result.grandfathered, result.stale_baseline = (
            apply_baseline(result.findings, baseline)
        )
    else:
        result.new_findings = list(result.findings)
    return result
