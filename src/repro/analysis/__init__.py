"""``repro.analysis`` — project-aware static analysis for the Buffalo
pipeline.

Two halves (ISSUE 4):

* **Lint framework** — an AST-based rule engine
  (:mod:`repro.analysis.framework`) with a rule registry, per-line
  ``# repro: noqa[rule]`` suppression, ``pyproject.toml`` configuration,
  text/JSON reporters, a committed baseline for grandfathered findings,
  and a content-hash cache so unchanged files are never re-parsed.  The
  domain rules (:mod:`repro.analysis.rules`) encode the paper's
  invariants: bit-for-bit determinism in parity-critical modules, no
  silent materialization of memmap-backed store arrays, span hygiene,
  a closed metric-name registry, float32 discipline in hot paths, and
  path-bearing store/dataset errors.
* **Concurrency checks** — a static lock-discipline pass
  (:mod:`repro.analysis.rules.lockcheck`) that builds a lock-acquisition
  graph over the threaded pipeline/store layers and flags unguarded
  writes to lock-protected attributes; the whole-program concurrency
  pass (:mod:`repro.analysis.concurrency`, ``repro lint
  --concurrency``) that constructs a cross-module call graph,
  propagates may/must held-lock sets, and reports lock-order cycles,
  blocking operations under a held lock, thread-escaping unguarded
  writes, and violated ``# guarded-by:`` / ``@locks_required``
  contracts (:mod:`repro.analysis.contracts`); plus the opt-in runtime
  :class:`~repro.analysis.race.RaceSentinel` that the threaded tests
  enable to catch unsynchronized cross-thread mutation as it happens.

Entry points: ``repro lint`` (CLI) and :func:`repro.analysis.runner.run_lint`.
"""

from repro.analysis.contracts import assert_holds, locks_required
from repro.analysis.findings import Finding
from repro.analysis.framework import (
    FileContext,
    LintRule,
    ProjectContext,
    ProjectRule,
    all_rules,
    get_rule,
    register_rule,
    rule_names,
)
from repro.analysis.race import RaceError, RaceSentinel, TrackedLock
from repro.analysis.runner import LintResult, run_lint

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "LintRule",
    "ProjectContext",
    "ProjectRule",
    "RaceError",
    "RaceSentinel",
    "TrackedLock",
    "all_rules",
    "assert_holds",
    "get_rule",
    "locks_required",
    "register_rule",
    "rule_names",
    "run_lint",
]
