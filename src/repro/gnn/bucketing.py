"""Degree bucketing with a cut-off degree ``F`` (paper §II-C).

Nodes of identical sampled degree are grouped so each bucket aggregates a
fixed-shape ``(n, degree, features)`` tensor with zero padding waste.
Nodes with degree >= ``F`` all land in the single *cut-off bucket* — the
bucket that explodes on power-law graphs (paper §III, Fig. 4).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import GraphError


@dataclass(eq=False)  # identity equality: rows are numpy arrays
class Bucket:
    """A set of destination rows sharing one sampled degree.

    Attributes:
        degree: the common sampled degree of the rows (for the cut-off
            bucket this is the *effective* degree — rows are truncated to
            ``F`` neighbors, matching fanout-``F`` sampling semantics).
        rows: destination-row indices (into a block's ``dst_nodes``).
        micro_index: ``None`` for an ordinary degree bucket; for a
            micro-bucket produced by ``SplitExplosionBucket``, its index
            within the split.
    """

    degree: int
    rows: np.ndarray
    micro_index: int | None = None

    def __post_init__(self) -> None:
        self.rows = np.ascontiguousarray(self.rows, dtype=INDEX_DTYPE)
        # Blocks this bucket's row degrees have been validated against,
        # keyed by id with weak cleanup (buckets outliving their block
        # must not pin it, and Block is unhashable).  The kernel layer
        # checks degrees once per (bucket, block) pair instead of on
        # every forward — see repro.kernels.csr.
        self._validated_blocks: dict[int, weakref.ref] = {}

    def validated_for(self, block) -> bool:
        """Whether row degrees were already validated against ``block``."""
        ref = self._validated_blocks.get(id(block))
        return ref is not None and ref() is block

    def mark_validated(self, block) -> None:
        """Record that this bucket's rows validated against ``block``."""
        key = id(block)
        registry = self._validated_blocks

        def _drop(_ref, _key=key, _registry=registry) -> None:
            _registry.pop(_key, None)

        registry[key] = weakref.ref(block, _drop)

    @property
    def volume(self) -> int:
        """Number of nodes in the bucket (the paper's *bucket volume*)."""
        return int(self.rows.size)

    @property
    def is_micro(self) -> bool:
        return self.micro_index is not None

    @property
    def n_edges(self) -> int:
        """Aggregation edges processed for this bucket."""
        return self.volume * self.degree

    def __repr__(self) -> str:
        micro = f", micro={self.micro_index}" if self.is_micro else ""
        return f"Bucket(degree={self.degree}, volume={self.volume}{micro})"


def bucketize_degrees(
    degrees: np.ndarray, cutoff: int | None
) -> list[Bucket]:
    """Group rows by degree with cut-off ``F = cutoff``.

    Rows with ``degree < cutoff`` go to exact-degree buckets; rows with
    ``degree >= cutoff`` form the single cut-off bucket labeled
    ``cutoff``.  Degree-0 rows get their own bucket (they aggregate
    nothing but still produce output features).

    With ``cutoff=None`` every distinct degree gets its own bucket —
    the exact-degree bucketing full-batch (unsampled) training needs,
    where row degrees are unbounded and a cut-off bucket would mix
    degrees.

    Returns buckets sorted by degree ascending; empty degrees are
    omitted.
    """
    degrees = np.asarray(degrees)
    if cutoff is None:
        clipped = degrees
    elif cutoff < 1:
        raise GraphError(f"cutoff must be >= 1, got {cutoff}")
    else:
        clipped = np.minimum(degrees, cutoff)
    order = np.argsort(clipped, kind="stable")
    sorted_deg = clipped[order]
    boundaries = np.flatnonzero(np.diff(sorted_deg)) + 1
    groups = np.split(order, boundaries)
    buckets = []
    for group in groups:
        if group.size == 0:
            continue
        buckets.append(Bucket(degree=int(clipped[group[0]]), rows=group))
    return buckets


def detect_explosion(
    buckets: list[Bucket],
    cutoff: int | None,
    *,
    factor: float = 2.0,
) -> Bucket | None:
    """Return the cut-off bucket when it explodes, else ``None``.

    The paper flags bucket explosion when the cut-off bucket dwarfs the
    others; we use the operational test "cut-off bucket volume exceeds
    ``factor`` times the mean volume of the remaining buckets" (with at
    least one other bucket present, any cut-off bucket of more than half
    the total also counts).

    With exact-degree bucketing (``cutoff=None``, the full-batch path)
    there is no designated cut-off bucket; the test applies to the
    highest-volume bucket instead.
    """
    if cutoff is None:
        cut = max(buckets, key=lambda b: b.volume, default=None)
    else:
        cut = next((b for b in buckets if b.degree == cutoff), None)
    if cut is None:
        return None
    others = [b.volume for b in buckets if b is not cut]
    if not others:
        return cut
    mean_other = float(np.mean(others))
    total = cut.volume + sum(others)
    if cut.volume > factor * mean_other or cut.volume > 0.5 * total:
        return cut
    return None


@dataclass
class BucketStats:
    """Summary used by the Fig. 4 reproduction."""

    volumes: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_buckets(cls, buckets: list[Bucket]) -> "BucketStats":
        stats = cls()
        for b in buckets:
            stats.volumes[b.degree] = stats.volumes.get(b.degree, 0) + b.volume
        return stats

    @property
    def imbalance(self) -> float:
        """Largest bucket volume over mean volume."""
        vols = list(self.volumes.values())
        return max(vols) / (sum(vols) / len(vols)) if vols else 0.0
