"""Graph convolutional network (Kipf & Welling 2017), bucket-vectorized.

Uses the symmetric normalization over the *sampled* block: the message
from source ``u`` to destination ``v`` is weighted by
``1 / sqrt((d_v + 1)(d_u + 1))`` and a self-loop term ``1 / (d_v + 1)``
adds the destination's own features, where degrees are the sampled
in-degrees within the block (source nodes outside the dst-prefix have
no sampled in-edges at this layer and count as degree 0).
"""

from __future__ import annotations

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.errors import GraphError
from repro.gnn.block import Block
from repro.gnn.bucketing import Bucket, bucketize_degrees
from repro.kernels.csr import bucket_positions
from repro.kernels.dispatch import get_kernel_backend
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor.ops import concat, gather_rows
from repro.tensor.tensor import Tensor


class GCNLayer(Module):
    """One graph convolution: ``h' = act(W . norm-agg(h))``."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        activation: bool = True,
        rng=None,
    ) -> None:
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(
        self,
        block: Block,
        src_feats: Tensor,
        cutoff: int,
        buckets: list[Bucket] | None = None,
        src_degrees: np.ndarray | None = None,
    ) -> Tensor:
        """Convolve one layer.

        Args:
            src_degrees: the sampled in-degree of each source node *in
            the batch subgraph* (partition-invariant — supplied by
            :class:`GCN` from the previous block in the chain).  When
            omitted, sources default to degree 0 (input-layer leaves),
            which is exact for the input-most layer.
        """
        if src_feats.shape[0] != block.n_src:
            raise GraphError(
                f"src_feats rows ({src_feats.shape[0]}) must match "
                f"block.n_src ({block.n_src})"
            )
        if buckets is None:
            buckets = bucketize_degrees(block.degrees, cutoff)

        if src_degrees is None:
            src_degrees = np.zeros(block.n_src, dtype=FLOAT_DTYPE)
        else:
            src_degrees = np.asarray(src_degrees, dtype=FLOAT_DTYPE)
            if src_degrees.shape != (block.n_src,):
                raise GraphError(
                    f"src_degrees shape {src_degrees.shape} must be "
                    f"({block.n_src},)"
                )

        backend = get_kernel_backend()
        outputs: list[Tensor] = []
        covered: list[np.ndarray] = []
        for bucket in buckets:
            covered.append(bucket.rows)
            d = bucket.degree
            dst_norm = 1.0 / (d + 1.0)
            h_dst = gather_rows(src_feats, bucket.rows)
            self_term = h_dst * float(dst_norm)
            if d == 0:
                outputs.append(self_term)
                continue
            positions = bucket_positions(block, bucket)
            coeff = (
                1.0
                / np.sqrt(
                    (d + 1.0) * (src_degrees[positions] + 1.0)
                )
            ).astype(FLOAT_DTYPE)
            neigh = backend.bucket_weighted_sum(
                block, bucket, src_feats, coeff
            )
            outputs.append(neigh + self_term)

        stacked = outputs[0] if len(outputs) == 1 else concat(outputs, axis=0)
        order = np.concatenate(covered)
        inverse = np.empty(block.n_dst, dtype=order.dtype)
        inverse[order] = np.arange(block.n_dst, dtype=order.dtype)
        out = self.linear(gather_rows(stacked, inverse))
        return out.relu() if self.activation else out


class GCN(Module):
    """Multi-layer GCN over chained blocks."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        n_classes: int,
        n_layers: int = 2,
        *,
        rng=None,
    ) -> None:
        if n_layers < 1:
            raise GraphError(f"n_layers must be >= 1, got {n_layers}")
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.n_classes = n_classes
        self.n_layers = n_layers
        self.aggregator_name = "gcn"
        dims = [in_dim] + [hidden_dim] * (n_layers - 1) + [n_classes]
        self.layers = [
            GCNLayer(
                dims[i],
                dims[i + 1],
                activation=(i < n_layers - 1),
                rng=None if rng is None else rng + i,
            )
            for i in range(n_layers)
        ]

    def forward(
        self,
        blocks: list[Block],
        input_feats: Tensor,
        cutoffs: list[int],
        buckets_per_layer: list[list[Bucket]] | None = None,
    ) -> Tensor:
        if len(blocks) != self.n_layers:
            raise GraphError(
                f"model has {self.n_layers} layers but got "
                f"{len(blocks)} blocks"
            )
        h = input_feats
        for i, (block, layer) in enumerate(zip(blocks, self.layers)):
            buckets = (
                buckets_per_layer[i] if buckets_per_layer is not None else None
            )
            # Source degrees from the chain: blocks[i].src_nodes equals
            # blocks[i-1].dst_nodes, whose sampled degrees come from the
            # batch subgraph and are therefore identical no matter how
            # the output layer was partitioned (keeps micro-batch
            # training exactly equivalent to full-batch).
            src_degrees = blocks[i - 1].degrees if i > 0 else None
            h = layer(block, h, cutoffs[i], buckets, src_degrees)
        return h
