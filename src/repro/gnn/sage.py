"""GraphSAGE with bucketed message passing (Hamilton et al. 2017)."""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.gnn.aggregators import make_aggregator
from repro.gnn.block import Block
from repro.gnn.bucketing import Bucket, bucketize_degrees
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor.ops import concat, gather_rows
from repro.tensor.tensor import Tensor


def apply_bucketed(
    aggregator,
    block: Block,
    buckets: list[Bucket],
    src_feats: Tensor,
) -> Tensor:
    """Run ``aggregator`` over each bucket and reassemble dst-row order.

    Returns the ``(n_dst, agg_dim)`` aggregated-neighbor tensor.  Bucket
    outputs are concatenated then permuted back so row ``i`` corresponds
    to ``block.dst_nodes[i]`` regardless of bucket order — this is what
    makes bucket splitting/grouping transparent to the model.
    """
    covered = np.concatenate([b.rows for b in buckets])
    if covered.size != block.n_dst or np.unique(covered).size != block.n_dst:
        raise GraphError(
            "buckets must partition the block's destination rows"
        )
    outputs = [aggregator(block, b, src_feats) for b in buckets]
    stacked = outputs[0] if len(outputs) == 1 else concat(outputs, axis=0)
    inverse = np.empty(block.n_dst, dtype=covered.dtype)
    inverse[covered] = np.arange(block.n_dst, dtype=covered.dtype)
    return gather_rows(stacked, inverse)


class SAGELayer(Module):
    """One GraphSAGE layer: ``h' = act(W_self h + W_neigh agg(N(h)))``.

    Args:
        in_dim: input feature width.
        out_dim: output width.
        aggregator: registry name ("mean", "sum", "max", "pool", "lstm").
        agg_hidden: hidden width for pool/LSTM aggregators (defaults to
            ``out_dim``, matching the paper's "hidden size").
        activation: apply ReLU (disabled on the output layer).
        rng: initializer seed.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        aggregator: str = "mean",
        *,
        agg_hidden: int | None = None,
        activation: bool = True,
        rng=None,
    ) -> None:
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        agg_hidden = out_dim if agg_hidden is None else agg_hidden
        self.aggregator = make_aggregator(
            aggregator, in_dim, agg_hidden, rng=rng
        )
        agg_out = self.aggregator.output_dim(in_dim)
        self.w_self = Linear(in_dim, out_dim, rng=rng)
        self.w_neigh = Linear(agg_out, out_dim, bias=False, rng=rng)

    def forward(
        self,
        block: Block,
        src_feats: Tensor,
        cutoff: int,
        buckets: list[Bucket] | None = None,
    ) -> Tensor:
        """Compute dst features ``(n_dst, out_dim)`` from src features."""
        if src_feats.shape[0] != block.n_src:
            raise GraphError(
                f"src_feats rows ({src_feats.shape[0]}) must match "
                f"block.n_src ({block.n_src})"
            )
        if buckets is None:
            buckets = bucketize_degrees(block.degrees, cutoff)
        aggregated = apply_bucketed(
            self.aggregator, block, buckets, src_feats
        )
        h_dst = src_feats[: block.n_dst]
        out = self.w_self(h_dst) + self.w_neigh(aggregated)
        return out.relu() if self.activation else out


class GraphSAGE(Module):
    """Multi-layer GraphSAGE over a chained block list.

    Args:
        in_dim: input feature width.
        hidden_dim: hidden width (also the aggregator hidden size).
        n_classes: output logits width.
        n_layers: aggregation depth ``L``.
        aggregator: aggregator registry name, shared by all layers.
        dropout: feature dropout applied before every layer but the
            first (0 disables; active only in training mode).
        rng: initializer seed.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        n_classes: int,
        n_layers: int = 2,
        aggregator: str = "mean",
        *,
        dropout: float = 0.0,
        rng=None,
    ) -> None:
        if n_layers < 1:
            raise GraphError(f"n_layers must be >= 1, got {n_layers}")
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.n_classes = n_classes
        self.n_layers = n_layers
        self.aggregator_name = aggregator
        dims = [in_dim] + [hidden_dim] * (n_layers - 1) + [n_classes]
        self.layers = [
            SAGELayer(
                dims[i],
                dims[i + 1],
                aggregator,
                agg_hidden=hidden_dim,
                activation=(i < n_layers - 1),
                rng=None if rng is None else rng + i,
            )
            for i in range(n_layers)
        ]
        self.dropout = (
            Dropout(dropout, seed=0 if rng is None else rng)
            if dropout > 0
            else None
        )

    def forward(
        self,
        blocks: list[Block],
        input_feats: Tensor,
        cutoffs: list[int],
        buckets_per_layer: list[list[Bucket]] | None = None,
    ) -> Tensor:
        """Logits for the output nodes of ``blocks[-1]``.

        Args:
            blocks: chained blocks, input-most first.
            input_feats: features of ``blocks[0].src_nodes``.
            cutoffs: bucketing cut-off per block (aligned with blocks).
            buckets_per_layer: optional externally scheduled buckets
                (Buffalo supplies split/grouped buckets for the output
                layer).
        """
        if len(blocks) != self.n_layers:
            raise GraphError(
                f"model has {self.n_layers} layers but got "
                f"{len(blocks)} blocks"
            )
        h = input_feats
        for i, (block, layer) in enumerate(zip(blocks, self.layers)):
            if i > 0 and self.dropout is not None:
                h = self.dropout(h)
            buckets = (
                buckets_per_layer[i] if buckets_per_layer is not None else None
            )
            h = layer(block, h, cutoffs[i], buckets)
        return h
