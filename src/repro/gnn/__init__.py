"""GNN framework substrate: blocks, degree bucketing, aggregators, models.

This package supplies what DGL provides in the paper's implementation:
message-flow-graph blocks (:mod:`block`), degree bucketing with a cut-off
``F`` (:mod:`bucketing`), the baseline connection-check block generation
(:mod:`block_gen`), bucket-wise aggregators including the memory-hungry
LSTM (:mod:`aggregators`), and the GraphSAGE / GAT models (:mod:`sage`,
:mod:`gat`).  Buffalo's accelerated block generation lives in
:mod:`repro.core.fastblock`.
"""

from repro.gnn.block import Block
from repro.gnn.bucketing import Bucket, bucketize_degrees, detect_explosion
from repro.gnn.block_gen import generate_blocks_baseline
from repro.gnn.aggregators import (
    AGGREGATORS,
    Aggregator,
    LSTMAggregator,
    MaxAggregator,
    MeanAggregator,
    PoolAggregator,
    SumAggregator,
    make_aggregator,
)
from repro.gnn.sage import GraphSAGE, SAGELayer
from repro.gnn.gat import GAT, GATLayer
from repro.gnn.gcn import GCN, GCNLayer

__all__ = [
    "Block",
    "Bucket",
    "bucketize_degrees",
    "detect_explosion",
    "generate_blocks_baseline",
    "Aggregator",
    "MeanAggregator",
    "SumAggregator",
    "MaxAggregator",
    "PoolAggregator",
    "LSTMAggregator",
    "AGGREGATORS",
    "make_aggregator",
    "SAGELayer",
    "GraphSAGE",
    "GATLayer",
    "GAT",
    "GCNLayer",
    "GCN",
]
