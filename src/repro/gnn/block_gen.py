"""Block generation.

:func:`assemble_blocks` is the shared frontier walk that turns per-node
neighbor rows into a chained list of :class:`~repro.gnn.block.Block`
objects (input-most first).

:func:`generate_blocks_baseline` is the *slow* row collector modeling the
existing systems' approach (paper §III, Fig. 5/12): for every destination
node it walks the node's full-graph neighbor list and re-checks, edge by
edge, whether that neighbor was selected by sampling — a per-edge
membership probe executed serially per micro-batch.  Buffalo's fast
counterpart (vectorized CSR row slicing over the already-sampled
subgraph) lives in :mod:`repro.core.fastblock`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import GraphError
from repro.gnn.block import Block
from repro.graph.csr import CSRGraph
from repro.graph.sampling import SampledBatch

RowFn = Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]


def assemble_blocks(
    batch: SampledBatch,
    seeds_local: np.ndarray,
    row_fn: RowFn,
    n_layers: int | None = None,
) -> list[Block]:
    """Walk frontiers from ``seeds_local`` inward, building chained blocks.

    Args:
        batch: the sampled batch (supplies the node universe).
        seeds_local: batch-local ids of the output nodes.
        row_fn: maps an array of batch-local nodes to their neighbor rows
            ``(indptr, flat)`` in batch-local ids.
        n_layers: number of blocks to build (default: the batch's depth).

    Returns:
        Blocks input-most first; ``blocks[-1].dst_nodes == seeds_local``.
    """
    seeds_local = np.asarray(seeds_local, dtype=INDEX_DTYPE)
    if seeds_local.size == 0:
        raise GraphError("cannot build blocks for an empty seed set")
    if n_layers is None:
        n_layers = batch.n_layers

    position = np.full(batch.n_nodes, -1, dtype=INDEX_DTYPE)
    blocks_reversed: list[Block] = []
    frontier = seeds_local

    for _ in range(n_layers):
        indptr, flat = row_fn(frontier)
        position[frontier] = np.arange(frontier.size, dtype=INDEX_DTYPE)
        new_nodes = np.unique(flat)
        new_nodes = new_nodes[position[new_nodes] < 0]
        position[new_nodes] = np.arange(
            frontier.size, frontier.size + new_nodes.size, dtype=INDEX_DTYPE
        )
        src_nodes = np.concatenate([frontier, new_nodes])
        indices = position[flat] if flat.size else flat
        blocks_reversed.append(
            Block(
                src_nodes=src_nodes,
                dst_nodes=frontier,
                indptr=indptr,
                indices=indices,
            )
        )
        # Reset for the next layer (position is reused as scratch).
        position[src_nodes] = -1
        frontier = src_nodes

    return blocks_reversed[::-1]


def generate_blocks_baseline(
    full_graph: CSRGraph,
    batch: SampledBatch,
    seeds_local: np.ndarray | None = None,
    *,
    n_layers: int | None = None,
    profiler=None,
) -> list[Block]:
    """Connection-check block generation (the Betty/DGL-style slow path).

    For every destination node, iterates its neighbor list in the
    *original* graph and probes, one edge at a time, whether the sampled
    subgraph kept that edge.  This is the per-edge "connection check" the
    paper identifies as the dominant data-preparation cost; it is
    intentionally a serial Python loop over edges.

    When ``profiler`` (a :class:`~repro.device.profiler.Profiler`) is
    given, the per-edge probing is recorded as ``connection_check`` and
    the block assembly as ``block_construction`` — the two phases Fig. 11
    reports separately.
    """
    import time as _time

    if seeds_local is None:
        seeds_local = batch.seeds_local
    node_map = batch.node_map
    sub = batch.graph
    local_of = np.full(full_graph.n_nodes, -1, dtype=INDEX_DTYPE)
    local_of[node_map] = np.arange(batch.n_nodes, dtype=INDEX_DTYPE)

    check_seconds = 0.0

    def row_fn(frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        nonlocal check_seconds
        check_start = _time.perf_counter()
        rows: list[list[int]] = []
        for v_local in frontier:
            v_local = int(v_local)
            v_global = int(node_map[v_local])
            sampled_set = {
                int(node_map[u]) for u in sub.neighbors(v_local)
            }
            selected: list[int] = []
            # Walk the ORIGINAL neighbor list and re-confirm each edge
            # against the sampled subgraph (membership probe per edge).
            for u_global in full_graph.neighbors(v_global):
                u_global = int(u_global)
                if u_global in sampled_set:
                    selected.append(int(local_of[u_global]))
            selected.sort()
            rows.append(selected)
        check_seconds += _time.perf_counter() - check_start
        lengths = np.array([len(r) for r in rows], dtype=INDEX_DTYPE)
        indptr = np.zeros(frontier.size + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=indptr[1:])
        flat = (
            np.concatenate([np.asarray(r, dtype=INDEX_DTYPE) for r in rows])
            if rows and indptr[-1] > 0
            else np.empty(0, dtype=INDEX_DTYPE)
        )
        return indptr, flat

    start = _time.perf_counter()
    blocks = assemble_blocks(batch, seeds_local, row_fn, n_layers)
    if profiler is not None:
        total = _time.perf_counter() - start
        check_record = profiler._record("connection_check")
        check_record.wall_s += check_seconds
        check_record.count += 1
        build_record = profiler._record("block_construction")
        build_record.wall_s += max(total - check_seconds, 0.0)
        build_record.count += 1
    return blocks
