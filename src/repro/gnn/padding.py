"""Padding-based aggregation (the PyG-style baseline, paper §II-C).

Without degree bucketing, the framework pads every destination row to the
block's maximum degree and aggregates a single ``(n_dst, max_d, feat)``
tensor with a validity mask.  On power-law graphs ``max_d`` is set by the
hub nodes, so padded memory dwarfs the bucketed footprint — this is the
baseline whose waste degree bucketing exists to remove.
"""

from __future__ import annotations

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.errors import GraphError
from repro.gnn.block import Block
from repro.tensor.ops import gather_rows
from repro.tensor.tensor import Tensor


def padded_neighbor_tensor(
    block: Block, src_feats: Tensor
) -> tuple[Tensor, np.ndarray]:
    """Gather all destinations' neighbors padded to the max degree.

    Returns ``(features, mask)`` where ``features`` is
    ``(n_dst, max_d, f)`` (padding rows point at source 0 and are zeroed
    by the mask) and ``mask`` is the ``(n_dst, max_d)`` validity matrix.
    """
    degrees = block.degrees
    if block.n_dst == 0:
        raise GraphError("padded aggregation over an empty block")
    max_d = int(degrees.max()) if degrees.size else 0
    if max_d == 0:
        out_dim = int(src_feats.shape[1])
        return (
            Tensor(
                np.zeros((block.n_dst, 0, out_dim), dtype=FLOAT_DTYPE),
                device=src_feats.device,
            ),
            np.zeros((block.n_dst, 0), dtype=FLOAT_DTYPE),
        )

    positions = np.zeros((block.n_dst, max_d), dtype=block.indices.dtype)
    mask = np.zeros((block.n_dst, max_d), dtype=FLOAT_DTYPE)
    for row in range(block.n_dst):
        nbrs = block.neighbor_positions(row)
        positions[row, : nbrs.size] = nbrs
        mask[row, : nbrs.size] = 1.0

    feats = gather_rows(src_feats, positions)
    masked = feats * Tensor(mask[:, :, None], device=src_feats.device)
    return masked, mask


def padded_mean(block: Block, src_feats: Tensor) -> Tensor:
    """Mean aggregation over the padded tensor (mask-normalized)."""
    feats, mask = padded_neighbor_tensor(block, src_feats)
    if feats.shape[1] == 0:
        return Tensor(
            np.zeros(
                (block.n_dst, int(src_feats.shape[1])), dtype=FLOAT_DTYPE
            ),
            device=src_feats.device,
        )
    counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
    return feats.sum(axis=1) * Tensor(
        (1.0 / counts).astype(FLOAT_DTYPE), device=src_feats.device
    )
