"""Message-flow-graph blocks (DGL's ``Block`` / MFG structure).

A block describes one layer of aggregation: every *destination* node
gathers from a row of *source* nodes.  Source ids follow the dst-prefix
convention (``src_nodes[:n_dst] == dst_nodes``) so a layer's output
tensor can be fed directly as the next layer's self-features, and
consecutive blocks chain exactly: ``blocks[l].src_nodes`` equals
``blocks[l - 1].dst_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import INDEX_DTYPE
from repro.errors import GraphError


@dataclass
class Block:
    """One aggregation layer.

    Attributes:
        src_nodes: batch-local ids of source nodes; the first ``n_dst``
            entries are the destination nodes themselves (dst-prefix).
        dst_nodes: batch-local ids of destination nodes.
        indptr: CSR offsets over destinations, shape ``(n_dst + 1,)``.
        indices: positions into ``src_nodes`` (NOT node ids) of each
            destination's sampled neighbors.
    """

    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        self.src_nodes = np.ascontiguousarray(self.src_nodes, INDEX_DTYPE)
        self.dst_nodes = np.ascontiguousarray(self.dst_nodes, INDEX_DTYPE)
        self.indptr = np.ascontiguousarray(self.indptr, INDEX_DTYPE)
        self.indices = np.ascontiguousarray(self.indices, INDEX_DTYPE)

    @property
    def n_src(self) -> int:
        return int(self.src_nodes.size)

    @property
    def n_dst(self) -> int:
        return int(self.dst_nodes.size)

    @property
    def n_edges(self) -> int:
        return int(self.indices.size)

    @property
    def degrees(self) -> np.ndarray:
        """Sampled in-degree of each destination node."""
        return np.diff(self.indptr)

    def validate(self) -> None:
        """Check structural invariants (used by tests and debug paths)."""
        if self.indptr.size != self.n_dst + 1:
            raise GraphError("indptr size must be n_dst + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.n_edges:
            raise GraphError("indptr bounds are inconsistent")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.n_edges and (
            self.indices.min() < 0 or self.indices.max() >= self.n_src
        ):
            raise GraphError("indices must point into src_nodes")
        if not np.array_equal(self.src_nodes[: self.n_dst], self.dst_nodes):
            raise GraphError("src_nodes must start with dst_nodes (dst-prefix)")

    def neighbor_positions(self, row: int) -> np.ndarray:
        """Positions into ``src_nodes`` of destination ``row``'s neighbors."""
        return self.indices[self.indptr[row] : self.indptr[row + 1]]

    def __repr__(self) -> str:
        return (
            f"Block(n_dst={self.n_dst}, n_src={self.n_src}, "
            f"n_edges={self.n_edges})"
        )


def chain_is_consistent(blocks: list[Block]) -> bool:
    """True when consecutive blocks chain (layer l src == layer l-1 dst)."""
    return all(
        np.array_equal(blocks[i + 1].src_nodes, blocks[i].dst_nodes)
        for i in range(len(blocks) - 1)
    )
