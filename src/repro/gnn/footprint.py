"""Analytic memory and compute footprints of bucketed GNN execution.

These formulas mirror, allocation by allocation, what the concrete
autograd execution creates (see the op inventory in each function).  They
serve three consumers:

* the **symbolic executor** — sweeps configurations too large to run
  concretely (Fig. 2's fanout-800 points) by replaying alloc/free events
  against a :class:`~repro.device.SimulatedGPU`;
* the **cost model** — FLOPs and DRAM traffic feed the roofline timing;
* **Buffalo's BucketMemEstimator** — per-bucket memory for the grouping
  algorithm (paper §IV-D), validated against the concrete ledger in
  Table III's reproduction.

``tests/gnn/test_footprint.py`` cross-checks these numbers against the
real allocation ledger on small configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import FLOAT_BYTES
from repro.errors import GraphError

#: Fraction of forward activation bytes additionally live at the backward
#: peak: every gradient-requiring activation gets a same-sized gradient
#: buffer that stays live until the graph is released.  Calibrated
#: against the concrete ledger (tests/gnn/test_footprint.py).
BACKWARD_OVERHEAD = 1.0

#: Backward pass FLOPs as a multiple of forward FLOPs (standard 2x).
BACKWARD_FLOPS = 2.0


@dataclass(frozen=True)
class Footprint:
    """Resource usage of a unit of work.

    Attributes:
        activation_bytes: bytes retained until the backward pass releases
            the graph (saved activations).
        grad_bytes: gradient-buffer bytes live at the backward peak (one
            buffer per gradient-requiring activation).
        flops: forward floating point operations.
        dram_bytes: device-memory traffic for roofline timing.
    """

    activation_bytes: float
    grad_bytes: float
    flops: float
    dram_bytes: float

    def __add__(self, other: "Footprint") -> "Footprint":
        return Footprint(
            self.activation_bytes + other.activation_bytes,
            self.grad_bytes + other.grad_bytes,
            self.flops + other.flops,
            self.dram_bytes + other.dram_bytes,
        )

    @staticmethod
    def zero() -> "Footprint":
        return Footprint(0.0, 0.0, 0.0, 0.0)

    def scaled(self, factor: float) -> "Footprint":
        return Footprint(
            self.activation_bytes * factor,
            self.grad_bytes * factor,
            self.flops * factor,
            self.dram_bytes * factor,
        )


def _resolve_backend(backend: str | None) -> str:
    """Backend name to model; ``None`` means the active kernel backend."""
    if backend is not None:
        return backend
    from repro.kernels.dispatch import get_kernel_backend

    return get_kernel_backend().name


def aggregator_bucket_footprint(
    name: str,
    n: int,
    d: int,
    in_dim: int,
    hidden: int,
    *,
    input_requires_grad: bool = True,
    heads: int = 1,
    backend: str | None = None,
) -> Footprint:
    """Footprint of aggregating one bucket of ``n`` nodes of degree ``d``.

    ``activation_bytes`` counts what stays live until backward — i.e.
    arrays captured by backward closures.  The ``(n, d, f)`` neighbor
    gather is retained for mean/sum/max only when the layer's inputs
    require grad (the first layer's inputs are leaf features, so its
    gather dies right after the reduction); pool/LSTM/attention always
    retain it because their parameterized matmuls save it for backward.

    ``backend`` selects the kernel backend being modeled (``None`` =
    whichever is active, so Eq. 1-2 estimates follow the executed
    path).  The **fused** backend never materializes the ``(n, d, f)``
    gather for mean/sum/max/gcn/attention — its backward rebuilds the
    CSR operator from block indices and borrows scratch from the
    workspace arena (amortized across buckets, excluded from the
    per-bucket live set) — so those retained-gather terms vanish;
    pool/LSTM stay dense under every backend.

    Per-aggregator retained inventory (float32 = 4 B unless noted):

    * mean/sum — reduction output ``(n, f)``.
    * max — output ``(n, f)`` plus int64 argmax ``(n, f)``.
    * pool — MLP pre-activation, ReLU mask (1 B) and output, all
      ``(n, d, h)``, plus argmax and output ``(n, h)``.
    * lstm — per step: input slice ``(n, f)``, concat ``(n, f+h)``,
      fused gates ``(n, 4h)`` twice (matmul out + bias add), four gate
      activations and the c/h tail ``(~6h)`` — about ``2f + 14h`` floats
      per node per step, all ``d`` steps retained.
    * attention — projected neighbors and weighted product ``(n, d, h)``,
      ~5 score/softmax arrays ``(n, d)``, output ``(n, h)``.
    """
    if n == 0 or d == 0:
        return Footprint.zero()
    b = FLOAT_BYTES
    irg = input_requires_grad
    fused = _resolve_backend(backend) == "fused" and name in (
        "mean",
        "sum",
        "max",
        "gcn",
        "attention",
    )
    gather = n * d * in_dim * b
    if name in ("mean", "sum"):
        out = n * in_dim * b
        if fused:
            # CSR segment-reduce: only the (n, f) output is retained;
            # backward touches each source row once (A^T @ grad).
            act = out
            grad = out if irg else 0
            dram = gather + out
        else:
            act = out + (gather if irg else 0)
            grad = (out + gather) if irg else 0
            dram = 2 * gather
        flops = n * d * in_dim
    elif name == "max":
        # Index bookkeeping (argmax) is treated as fused kernel state,
        # matching the ledger's convention of tracking float tensors.
        out = n * in_dim * b
        if fused:
            # Output plus the int32 best-column tracker the backward
            # closure keeps (same element count as the output).
            act = out + (out if irg else 0)
            grad = out if irg else 0
            dram = gather + out
        else:
            act = out + (gather if irg else 0)
            grad = (out + gather) if irg else 0
            dram = 2 * gather
        flops = n * d * in_dim
    elif name == "pool":
        # matmul out + bias add + relu out, all (n, d, h); max out (n, h).
        mlp_acts = 3 * n * d * hidden * b
        act = gather + mlp_acts + n * hidden * b
        grad = 3 * n * d * hidden * b + n * hidden * b + (gather if irg else 0)
        flops = 2.0 * n * d * in_dim * hidden + n * d * hidden
        dram = 2 * gather + mlp_acts
    elif name == "lstm":
        # Per step: x slice (f), concat (f+h), fused matmul + bias add
        # (8h), four gate slices + four activations (8h), c/h tail (5h).
        act_per_step = n * (2 * in_dim + 21 * hidden) * b
        grad_per_step = n * ((2 * in_dim if irg else in_dim) + 21 * hidden) * b
        act = gather + d * act_per_step
        grad = d * grad_per_step + (gather if irg else 0)
        flops = d * (2.0 * n * (in_dim + hidden) * 4 * hidden + 10.0 * n * hidden)
        dram = 2 * gather + d * act_per_step
    elif name == "gcn":
        # Normalized sum: the (n, d, f) gather, its coefficient product,
        # and the (n, d, 1) coefficient tensor are retained only when
        # inputs require grad; the self-term gather/product and summed
        # output (~3 arrays of (n, f)) persist either way.  The fused
        # weighted-sum keeps only the coefficient vector — the operator
        # is rebuilt from CSR indices in backward.
        out = 3 * n * in_dim * b
        coeff = n * d * b
        if fused:
            act = out + (coeff if irg else 0)
            grad = out if irg else 0
            dram = gather + coeff + out
        else:
            act = out + (2 * gather + coeff if irg else 0)
            grad = (out + 2 * gather) if irg else 0
            dram = 3 * gather
        flops = 3.0 * n * d * in_dim
    elif name == "attention":
        # nbr_proj + weighted (n, d, h) scale with the total width
        # (heads share it); the ~5 score/softmax arrays (n, d) are per
        # head; output (n, h).  Nearly everything is downstream of the
        # projection weights, so grads mirror activations.  Fused
        # attention drops the two (n, d, h) arrays — alpha and the
        # scores stay retained (softmax backward needs them).
        dense_ndh = 0 if fused else 2 * n * d * hidden * b
        act = (
            dense_ndh
            + 5 * n * d * b * heads
            + n * hidden * b
        )
        grad = act
        flops = 2.0 * n * d * hidden + 6.0 * n * d * heads
        dram = (
            2 * n * d * hidden * b
            if not fused
            else n * d * hidden * b + n * hidden * b
        )
    else:
        raise GraphError(f"unknown aggregator {name!r}")
    return Footprint(float(act), float(grad), float(flops), float(dram))


def combine_footprint(n_dst: int, in_dim: int, out_dim: int) -> Footprint:
    """The SAGE combine step: two Linears, a sum, and the activation.

    Allocations: ``W_self h`` (+bias), ``W_neigh agg``, their sum, and the
    ReLU output — about five ``(n_dst, out)`` arrays, all downstream of
    parameters, so gradients mirror them.
    """
    b = FLOAT_BYTES
    act = 5 * n_dst * out_dim * b
    flops = 2.0 * n_dst * in_dim * out_dim * 2  # two matmuls
    dram = (n_dst * in_dim + 5 * n_dst * out_dim) * b
    return Footprint(float(act), float(act), float(flops), float(dram))


def layer_footprint(
    degree_histogram: dict[int, int],
    in_dim: int,
    out_dim: int,
    aggregator: str,
    agg_hidden: int,
    *,
    input_requires_grad: bool = True,
    heads: int = 1,
    backend: str | None = None,
) -> Footprint:
    """Footprint of one full layer given the block's degree histogram.

    Args:
        degree_histogram: sampled degree -> number of destination rows.
        in_dim / out_dim: layer widths.
        aggregator: registry name.
        agg_hidden: aggregator hidden width.
        input_requires_grad: False for the input-most layer (leaf
            features), True for every later layer.
        heads: attention heads (GAT only).
        backend: kernel backend modeled (``None`` = active backend).
    """
    backend = _resolve_backend(backend)
    total = Footprint.zero()
    n_dst = 0
    for degree, count in degree_histogram.items():
        n_dst += count
        total = total + aggregator_bucket_footprint(
            aggregator,
            count,
            degree,
            in_dim,
            agg_hidden,
            input_requires_grad=input_requires_grad,
            heads=heads,
            backend=backend,
        )
    if aggregator == "gcn":
        # GCN's combine is a single Linear (3 retained arrays vs SAGE's
        # 5); approximate with 0.6 of the SAGE combine.
        reassembly_bytes = float(2 * n_dst * in_dim * FLOAT_BYTES)
        reassembly = Footprint(
            reassembly_bytes,
            reassembly_bytes if input_requires_grad else reassembly_bytes,
            0.0,
            reassembly_bytes,
        )
        return (
            total
            + reassembly
            + combine_footprint(n_dst, in_dim, out_dim).scaled(0.6)
        )
    agg_out = (
        agg_hidden if aggregator in ("pool", "lstm", "attention") else in_dim
    )
    # Bucket reassembly (concat + permute back to dst order): two
    # (n_dst, agg_out) arrays retained by the downstream matmul closure;
    # they require grad exactly when the aggregator outputs do.
    reassembly_bytes = float(2 * n_dst * agg_out * FLOAT_BYTES)
    reassembly_requires_grad = input_requires_grad or aggregator in (
        "pool",
        "lstm",
        "attention",
    )
    reassembly = Footprint(
        reassembly_bytes,
        reassembly_bytes if reassembly_requires_grad else 0.0,
        0.0,
        reassembly_bytes,
    )
    return (
        total
        + reassembly
        + combine_footprint(n_dst, max(in_dim, agg_out), out_dim)
    )


def model_layer_footprints(
    blocks,
    spec: "ModelSpec",
    *,
    backend: str | None = None,
) -> list[Footprint]:
    """Per-layer footprints of running ``spec`` over chained ``blocks``."""
    backend = _resolve_backend(backend)
    return [
        layer_footprint(
            degree_histogram_of_block(block),
            f_in,
            f_out,
            spec.aggregator,
            spec.hidden_dim,
            input_requires_grad=(i > 0),
            heads=spec.heads,
            backend=backend,
        )
        for i, (block, (f_in, f_out)) in enumerate(
            zip(blocks, spec.layer_dims())
        )
    ]


def input_feature_bytes(n_src: int, feat_dim: int) -> int:
    """Bytes of the input-layer feature tensor loaded to the device."""
    return int(n_src * feat_dim * FLOAT_BYTES)


def training_peak_bytes(
    layer_footprints: list[Footprint],
    input_bytes: int,
    param_bytes: int,
) -> float:
    """Peak device bytes for one forward+backward over the given layers.

    Forward retains every layer's activations; the backward peak adds
    the per-activation gradient buffers, plus parameters with their
    gradients and the input features.
    """
    activations = sum(fp.activation_bytes for fp in layer_footprints)
    gradients = sum(fp.grad_bytes for fp in layer_footprints)
    return input_bytes + 2.0 * param_bytes + activations + gradients


def training_flops(layer_footprints: list[Footprint]) -> float:
    """Forward + backward FLOPs for one iteration over the layers."""
    forward = sum(fp.flops for fp in layer_footprints)
    return forward * (1.0 + BACKWARD_FLOPS)


def training_dram_bytes(layer_footprints: list[Footprint]) -> float:
    """DRAM traffic for one iteration (backward re-reads activations)."""
    forward = sum(fp.dram_bytes for fp in layer_footprints)
    return forward * (1.0 + BACKWARD_FLOPS)


def degree_histogram_of_block(block) -> dict[int, int]:
    """Degree histogram ``{degree: count}`` of a block's destinations."""
    degrees, counts = np.unique(block.degrees, return_counts=True)
    return {int(d): int(c) for d, c in zip(degrees, counts)}


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a GNN workload for analytic footprints.

    Mirrors the constructor arguments of
    :class:`~repro.gnn.sage.GraphSAGE` / :class:`~repro.gnn.gat.GAT` so
    the symbolic executor and Buffalo's estimator can reason about a
    model without instantiating it.
    """

    in_dim: int
    hidden_dim: int
    n_classes: int
    n_layers: int
    aggregator: str = "mean"
    #: Attention heads (GAT only); total hidden width stays hidden_dim.
    heads: int = 1
    #: Feature dropout between layers (consumed by build_model).
    dropout: float = 0.0

    def layer_dims(self) -> list[tuple[int, int]]:
        """Per-layer ``(in, out)`` widths, input-most first."""
        dims = (
            [self.in_dim]
            + [self.hidden_dim] * (self.n_layers - 1)
            + [self.n_classes]
        )
        return [(dims[i], dims[i + 1]) for i in range(self.n_layers)]

    def param_bytes(self) -> int:
        """Approximate parameter bytes (weights only, float32)."""
        total = 0
        h = self.hidden_dim
        for f_in, f_out in self.layer_dims():
            if self.aggregator == "attention":
                # GAT layer: projection + two attention vectors + bias.
                total += f_in * f_out + 3 * f_out
                continue
            if self.aggregator == "gcn":
                total += f_in * f_out + f_out  # one linear + bias
                continue
            agg_out = h if self.aggregator in ("pool", "lstm") else f_in
            total += f_in * f_out + f_out  # w_self + bias
            total += agg_out * f_out  # w_neigh
            if self.aggregator == "lstm":
                total += (f_in + h) * 4 * h + 4 * h
            elif self.aggregator == "pool":
                total += f_in * h + h
        return int(total * FLOAT_BYTES)
