"""Bucket-wise neighbor aggregators.

Each aggregator consumes one degree bucket at a time: the bucket's rows
all share a sampled degree ``d``, so the gathered neighbor features form
a dense ``(n, d, feat)`` tensor with no padding (the whole point of
degree bucketing, paper §II-C).

Memory profile per bucket (what the explosion bucket amplifies):

* mean / sum / max — one gather ``(n, d, f)`` plus the reduction.
* pool — gather + an MLP applied per neighbor: ``(n, d, hidden)``.
* lstm — gather + ``d`` LSTM steps, each retaining its gate activations
  for backward: memory grows with ``n * d * hidden``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.gnn.block import Block
from repro.gnn.bucketing import Bucket
from repro.kernels.dispatch import get_kernel_backend
from repro.nn.linear import Linear
from repro.nn.lstm import LSTM
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


def _bucket_neighbor_tensor(
    block: Block, bucket: Bucket, src_feats: Tensor
) -> Tensor:
    """Gather the ``(n, d, f)`` neighbor-feature tensor for a bucket.

    Row-degree validation runs once per (bucket, block) pair and the
    ``arange(d)`` column offsets are cached per degree (see
    :mod:`repro.kernels.csr`) — this runs per bucket per micro-batch
    per epoch.
    """
    return get_kernel_backend().neighbor_tensor(block, bucket, src_feats)


class Aggregator(Module):
    """Base class: aggregates a bucket's neighbors into ``(n, out)``."""

    def output_dim(self, in_dim: int) -> int:
        """Feature width produced for ``in_dim``-wide inputs."""
        return in_dim

    def forward(
        self, block: Block, bucket: Bucket, src_feats: Tensor
    ) -> Tensor:
        raise NotImplementedError  # pragma: no cover - abstract

    def _empty(self, bucket: Bucket, src_feats: Tensor) -> Tensor:
        out_dim = self.output_dim(int(src_feats.shape[1]))
        out = np.zeros(  # repro: noqa[hot-alloc] owned autograd output
            (bucket.volume, out_dim), dtype=src_feats.dtype
        )
        return Tensor(out, device=src_feats.device)


class MeanAggregator(Aggregator):
    """Average of neighbor features."""

    def forward(self, block, bucket, src_feats):
        if bucket.degree == 0:
            return self._empty(bucket, src_feats)
        return get_kernel_backend().bucket_reduce(
            block, bucket, src_feats, "mean"
        )


class SumAggregator(Aggregator):
    """Sum of neighbor features."""

    def forward(self, block, bucket, src_feats):
        if bucket.degree == 0:
            return self._empty(bucket, src_feats)
        return get_kernel_backend().bucket_reduce(
            block, bucket, src_feats, "sum"
        )


class MaxAggregator(Aggregator):
    """Elementwise max of neighbor features."""

    def forward(self, block, bucket, src_feats):
        if bucket.degree == 0:
            return self._empty(bucket, src_feats)
        return get_kernel_backend().bucket_reduce(
            block, bucket, src_feats, "max"
        )


class PoolAggregator(Aggregator):
    """Max-pool aggregator: per-neighbor MLP then elementwise max."""

    def __init__(self, in_dim: int, hidden_dim: int, *, rng=None) -> None:
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.mlp = Linear(in_dim, hidden_dim, rng=rng)

    def output_dim(self, in_dim: int) -> int:
        return self.hidden_dim

    def forward(self, block, bucket, src_feats):
        if bucket.degree == 0:
            return self._empty(bucket, src_feats)
        nbrs = _bucket_neighbor_tensor(block, bucket, src_feats)
        n, d, f = nbrs.shape
        hidden = self.mlp(nbrs.reshape(n * d, f)).relu()
        return hidden.reshape(n, d, self.hidden_dim).max(axis=1)


class LSTMAggregator(Aggregator):
    """LSTM over the neighbor sequence (paper's memory-intensive case)."""

    def __init__(self, in_dim: int, hidden_dim: int, *, rng=None) -> None:
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.lstm = LSTM(in_dim, hidden_dim, rng=rng)

    def output_dim(self, in_dim: int) -> int:
        return self.hidden_dim

    def forward(self, block, bucket, src_feats):
        if bucket.degree == 0:
            return self._empty(bucket, src_feats)
        nbrs = _bucket_neighbor_tensor(block, bucket, src_feats)
        return self.lstm(nbrs)


#: Registry used by experiment configs ("mean", "lstm", ...).
AGGREGATORS = {
    "mean": MeanAggregator,
    "sum": SumAggregator,
    "max": MaxAggregator,
    "pool": PoolAggregator,
    "lstm": LSTMAggregator,
}


def make_aggregator(
    name: str, in_dim: int, hidden_dim: int, *, rng=None
) -> Aggregator:
    """Instantiate an aggregator by registry name."""
    try:
        cls = AGGREGATORS[name]
    except KeyError:
        raise GraphError(
            f"unknown aggregator {name!r}; available: {sorted(AGGREGATORS)}"
        ) from None
    if cls in (PoolAggregator, LSTMAggregator):
        return cls(in_dim, hidden_dim, rng=rng)
    return cls()
