"""Graph attention network (Veličković et al. 2018), bucket-vectorized.

Within a degree bucket every destination has the same neighbor count, so
attention scores form a dense ``(n, d)`` matrix and the softmax
normalization is one vectorized op — the same bucketing benefit the
paper exploits for GraphSAGE.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.gnn.block import Block
from repro.gnn.bucketing import Bucket, bucketize_degrees
from repro.kernels.csr import bucket_positions
from repro.kernels.dispatch import get_kernel_backend
from repro.nn import init
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.tensor.functional import softmax
from repro.tensor.ops import concat, gather_rows
from repro.tensor.tensor import Tensor


class GATLayer(Module):
    """Single-head GAT layer.

    Attention logits follow the GATv1 decomposition
    ``e_ij = LeakyReLU(a_l . W h_i + a_r . W h_j)``; degree-0 rows fall
    back to their own projected features.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        activation: bool = True,
        negative_slope: float = 0.2,
        rng=None,
    ) -> None:
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.negative_slope = negative_slope
        self.proj = Linear(in_dim, out_dim, bias=False, rng=rng)
        self.attn_dst = Parameter(init.xavier_uniform((out_dim, 1), rng))
        self.attn_src = Parameter(init.xavier_uniform((out_dim, 1), rng))
        self.bias = Parameter(init.zeros((out_dim,)))

    def forward(
        self,
        block: Block,
        src_feats: Tensor,
        cutoff: int,
        buckets: list[Bucket] | None = None,
    ) -> Tensor:
        if src_feats.shape[0] != block.n_src:
            raise GraphError(
                f"src_feats rows ({src_feats.shape[0]}) must match "
                f"block.n_src ({block.n_src})"
            )
        if buckets is None:
            buckets = bucketize_degrees(block.degrees, cutoff)

        projected = self.proj(src_feats)  # (n_src, out)
        dst_scores = projected @ self.attn_dst  # (n_src, 1)
        src_scores = projected @ self.attn_src  # (n_src, 1)

        backend = get_kernel_backend()
        outputs: list[Tensor] = []
        covered: list[np.ndarray] = []
        for bucket in buckets:
            covered.append(bucket.rows)
            proj_dst = gather_rows(projected, bucket.rows)
            if bucket.degree == 0:
                outputs.append(proj_dst)
                continue
            # (n, d) attention logits.
            e_dst = gather_rows(dst_scores, bucket.rows)  # (n, 1)
            positions = bucket_positions(block, bucket)
            e_src = gather_rows(src_scores, positions).reshape(
                bucket.volume, bucket.degree
            )
            logits = (e_dst + e_src).leaky_relu(self.negative_slope)
            alpha = softmax(logits, axis=1)  # (n, d)
            outputs.append(
                backend.bucket_attention_sum(block, bucket, projected, alpha)
            )

        stacked = outputs[0] if len(outputs) == 1 else concat(outputs, axis=0)
        order = np.concatenate(covered)
        inverse = np.empty(block.n_dst, dtype=order.dtype)
        inverse[order] = np.arange(block.n_dst, dtype=order.dtype)
        out = gather_rows(stacked, inverse) + self.bias
        if self.activation:
            from repro.nn.activations import ELU

            return ELU()(out)
        return out


class MultiHeadGATLayer(Module):
    """Concatenated multi-head attention layer.

    ``heads`` independent :class:`GATLayer` heads of width
    ``out_dim // heads`` run over the same block; their outputs are
    concatenated and (optionally) passed through ELU — the standard GAT
    hidden-layer construction.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int,
        *,
        activation: bool = True,
        rng=None,
    ) -> None:
        if heads < 1:
            raise GraphError(f"heads must be >= 1, got {heads}")
        if out_dim % heads != 0:
            raise GraphError(
                f"out_dim ({out_dim}) must be divisible by heads ({heads})"
            )
        self.heads = heads
        self.activation = activation
        per_head = out_dim // heads
        self.head_layers = [
            GATLayer(
                in_dim,
                per_head,
                activation=False,
                rng=None if rng is None else rng + 31 * h,
            )
            for h in range(heads)
        ]

    def forward(self, block, src_feats, cutoff, buckets=None):
        from repro.tensor.ops import concat

        outputs = [
            head(block, src_feats, cutoff, buckets)
            for head in self.head_layers
        ]
        out = outputs[0] if len(outputs) == 1 else concat(outputs, axis=1)
        if self.activation:
            from repro.nn.activations import ELU

            return ELU()(out)
        return out


class GAT(Module):
    """Multi-layer GAT over chained blocks.

    Hidden layers use ``heads`` concatenated attention heads (total
    width ``hidden_dim``); the output layer is single-head, as in the
    original GAT.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        n_classes: int,
        n_layers: int = 2,
        *,
        heads: int = 1,
        rng=None,
    ) -> None:
        if n_layers < 1:
            raise GraphError(f"n_layers must be >= 1, got {n_layers}")
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.n_classes = n_classes
        self.n_layers = n_layers
        self.heads = heads
        self.aggregator_name = "attention"
        dims = [in_dim] + [hidden_dim] * (n_layers - 1) + [n_classes]
        self.layers = []
        for i in range(n_layers):
            is_output = i == n_layers - 1
            layer_rng = None if rng is None else rng + i
            if is_output or heads == 1:
                self.layers.append(
                    GATLayer(
                        dims[i],
                        dims[i + 1],
                        activation=not is_output,
                        rng=layer_rng,
                    )
                )
            else:
                self.layers.append(
                    MultiHeadGATLayer(
                        dims[i],
                        dims[i + 1],
                        heads,
                        activation=True,
                        rng=layer_rng,
                    )
                )

    def forward(
        self,
        blocks: list[Block],
        input_feats: Tensor,
        cutoffs: list[int],
        buckets_per_layer: list[list[Bucket]] | None = None,
    ) -> Tensor:
        if len(blocks) != self.n_layers:
            raise GraphError(
                f"model has {self.n_layers} layers but got "
                f"{len(blocks)} blocks"
            )
        h = input_feats
        for i, (block, layer) in enumerate(zip(blocks, self.layers)):
            buckets = (
                buckets_per_layer[i] if buckets_per_layer is not None else None
            )
            h = layer(block, h, cutoffs[i], buckets)
        return h
