"""Checkpointing: save/restore model parameters and training state."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.nn.module import Module


def save_checkpoint(
    path: str | Path,
    model: Module,
    *,
    metadata: dict | None = None,
) -> None:
    """Write a model's parameters (plus JSON metadata) to an ``.npz``.

    Args:
        path: target file; parent directories are created.
        model: the module whose :meth:`state_dict` is saved.
        metadata: JSON-serializable extras (epoch, loss, config, ...).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    payload = dict(state)
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode(), dtype=np.uint8
    )
    np.savez(path, **payload)


def load_checkpoint(
    path: str | Path, model: Module
) -> dict:
    """Restore parameters saved by :func:`save_checkpoint`.

    Returns:
        The metadata dict stored alongside the parameters.

    Raises:
        ReproError: when the file is missing or shapes mismatch.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"checkpoint not found: {path}")
    with np.load(path) as archive:
        metadata_raw = archive["__metadata__"].tobytes().decode()
        state = {
            key: archive[key]
            for key in archive.files
            if key != "__metadata__"
        }
    try:
        model.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise ReproError(f"checkpoint does not match model: {exc}") from exc
    return json.loads(metadata_raw)
