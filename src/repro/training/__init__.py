"""High-level training workflows on top of Buffalo.

The paper's system supports full-batch and mini-batch training (§I);
this package provides the user-facing loop: seed-batched epochs
(:mod:`dataloader`), accuracy evaluation (:mod:`evaluate`), checkpoints
(:mod:`checkpoint`), and an epoch runner with early stopping
(:mod:`loop`).
"""

from repro.training.dataloader import BackgroundPrefetcher, SeedBatchLoader
from repro.training.evaluate import accuracy, evaluate
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.inference import full_graph_accuracy, full_graph_inference
from repro.training.loop import EpochResult, TrainingLoop

__all__ = [
    "SeedBatchLoader",
    "BackgroundPrefetcher",
    "accuracy",
    "evaluate",
    "full_graph_inference",
    "full_graph_accuracy",
    "save_checkpoint",
    "load_checkpoint",
    "TrainingLoop",
    "EpochResult",
]
