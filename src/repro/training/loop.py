"""Epoch-level training loop: Buffalo per mini-batch, eval, early stop."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.api import BuffaloTrainer
from repro.datasets.catalog import Dataset
from repro.errors import ReproError
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.training.checkpoint import save_checkpoint
from repro.training.dataloader import BackgroundPrefetcher, SeedBatchLoader
from repro.training.evaluate import evaluate


@dataclass
class EpochResult:
    """Metrics of one epoch.

    Attributes:
        wall_s: end-to-end wall-clock seconds of the epoch (batches +
            evaluation).
        metrics: one registry snapshot taken at epoch end — cumulative
            process-wide instrument state, captured once per epoch
            rather than per batch.
    """

    epoch: int
    mean_loss: float
    val_accuracy: float | None
    n_batches: int
    total_micro_batches: int
    wall_s: float = 0.0
    metrics: dict = field(default_factory=dict)


@dataclass
class TrainingLoop:
    """Mini-batch training driven by a :class:`BuffaloTrainer`.

    Each epoch shuffles the train split into seed batches; every batch
    runs the full Buffalo pipeline (sample → schedule → micro-batches →
    gradient-accumulated step).  Optionally evaluates on a validation
    split each epoch, tracks the best model, and stops early when
    validation accuracy stops improving.

    Every epoch runs inside a ``train.epoch`` span and snapshots the
    metrics registry exactly once (at epoch end) — per-batch telemetry
    lives in the per-iteration spans and instruments instead, so the
    loop itself stays off the hot path.

    Attributes:
        trainer: the configured Buffalo trainer (model, device, fanouts).
        dataset: supplies features/labels and the splits.
        batch_size: seeds per mini-batch.
        val_nodes: validation node ids (``None`` disables evaluation).
        patience: epochs without val improvement before stopping
            (``None`` disables early stopping).
        checkpoint_path: when set, the best model (by val accuracy, or
            latest when no validation) is saved here each time it
            improves.
    """

    trainer: BuffaloTrainer
    dataset: Dataset
    batch_size: int = 256
    val_nodes: np.ndarray | None = None
    patience: int | None = None
    checkpoint_path: str | Path | None = None
    seed: int = 0
    history: list[EpochResult] = field(default_factory=list)

    def run(self, n_epochs: int) -> list[EpochResult]:
        """Train for up to ``n_epochs``; returns the epoch history."""
        if n_epochs < 1:
            raise ReproError(f"n_epochs must be >= 1, got {n_epochs}")
        loader = SeedBatchLoader(
            self.dataset.train_nodes, self.batch_size, seed=self.seed
        )
        # When the trainer pipelines its micro-batches, prefetch seed
        # batches behind the same depth too — shuffling/slicing the next
        # batch overlaps with the current batch's training.
        config = getattr(self.trainer, "pipeline_config", None)
        seed_source = loader
        if config is not None and config.threaded and config.depth > 1:
            seed_source = BackgroundPrefetcher(loader, depth=config.depth)
        tracer = get_tracer()
        registry = get_metrics()
        best_acc = -1.0
        stale = 0
        for epoch in range(n_epochs):
            epoch_start = time.perf_counter()
            with tracer.span("train.epoch", {"epoch": epoch}) as span:
                losses = []
                micro_total = 0
                for seeds in seed_source:
                    report = self.trainer.run_iteration(seeds)
                    losses.append(report.result.loss)
                    micro_total += report.n_micro_batches

                val_acc = None
                if self.val_nodes is not None and self.val_nodes.size:
                    val_acc = evaluate(
                        self.trainer.model,
                        self.dataset,
                        self.val_nodes,
                        self.trainer.fanouts,
                        seed=self.seed,
                    )
                span.set_attrs(
                    {
                        "n_batches": len(losses),
                        "mean_loss": float(np.mean(losses)),
                        "total_micro_batches": micro_total,
                    }
                )
                if val_acc is not None:
                    span.set_attr("val_accuracy", val_acc)
                # Capture the wall clock *inside* the span: closing it
                # emits to the trace sink, and a slow sink's flush is
                # observability overhead, not training time.
                wall_s = time.perf_counter() - epoch_start

            # One registry snapshot per epoch — not per batch: the
            # instruments are cumulative, so sampling them once at the
            # epoch boundary captures everything the batches recorded.
            result = EpochResult(
                epoch=epoch,
                mean_loss=float(np.mean(losses)),
                val_accuracy=val_acc,
                n_batches=len(losses),
                total_micro_batches=micro_total,
                wall_s=wall_s,
                metrics=registry.snapshot(),
            )
            self.history.append(result)

            improved = val_acc is None or val_acc > best_acc
            if improved:
                best_acc = val_acc if val_acc is not None else best_acc
                stale = 0
                if self.checkpoint_path is not None:
                    save_checkpoint(
                        self.checkpoint_path,
                        self.trainer.model,
                        metadata={
                            "epoch": epoch,
                            "mean_loss": result.mean_loss,
                            "val_accuracy": val_acc,
                        },
                    )
            else:
                stale += 1
                if self.patience is not None and stale > self.patience:
                    break
        return self.history
