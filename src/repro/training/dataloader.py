"""Seed batching for mini-batch GNN training.

Shuffles the training nodes each epoch and yields fixed-size seed
batches — the standard neighbor-sampling training regime the paper's
systems operate in.  Each batch is then sampled, scheduled, and trained
independently (the Buffalo pipeline runs per batch).
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator

import numpy as np

from repro.config import rng_from
from repro.errors import ReproError


class SeedBatchLoader:
    """Yields shuffled seed batches of a node set.

    Args:
        nodes: the training node ids.
        batch_size: seeds per batch.
        shuffle: reshuffle every epoch.
        drop_last: drop the final short batch (keeps batch shapes
            comparable across iterations).
        seed: RNG seed; epoch ``e`` uses ``seed + e`` so runs are
            reproducible yet epochs differ.
    """

    def __init__(
        self,
        nodes: np.ndarray,
        batch_size: int,
        *,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        self.nodes = np.asarray(nodes)
        if self.nodes.size == 0:
            raise ReproError("SeedBatchLoader needs at least one node")
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        """Batches per epoch."""
        full, rem = divmod(self.nodes.size, self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[np.ndarray]:
        order = self.nodes
        if self.shuffle:
            rng = rng_from(self.seed + self._epoch)
            order = rng.permutation(self.nodes)
        self._epoch += 1
        for start in range(0, order.size, self.batch_size):
            batch = order[start : start + self.batch_size]
            if batch.size < self.batch_size and self.drop_last:
                return
            yield np.sort(batch)

    @property
    def epochs_served(self) -> int:
        return self._epoch


_DONE = object()


class BackgroundPrefetcher:
    """Drains an iterable on a daemon thread behind a bounded queue.

    Companion to the staged execution engine: while the trainer works
    through one seed batch's micro-batches, the next epoch batch is
    already being shuffled/sliced here.  The wrapper is re-iterable —
    every ``iter()`` starts a fresh worker over a fresh pass of the
    underlying iterable (so a :class:`SeedBatchLoader`'s per-epoch
    reshuffle still happens) — and preserves order exactly.

    Args:
        iterable: any re-iterable source of items.
        depth: queue bound — how many items may sit prefetched.
    """

    def __init__(self, iterable: Iterable, depth: int = 2) -> None:
        if depth < 1:
            raise ReproError(f"prefetch depth must be >= 1, got {depth}")
        self.iterable = iterable
        self.depth = int(depth)

    def __len__(self) -> int:
        return len(self.iterable)  # type: ignore[arg-type]

    def __iter__(self) -> Iterator:
        q: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def _put(item) -> bool:
            while not stop.is_set():
                try:
                    q.put(item, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def _worker() -> None:
            try:
                for item in self.iterable:
                    if not _put(item):
                        return
                _put(_DONE)
            except BaseException as exc:  # re-raised on the consumer
                _put(("error", exc))

        worker = threading.Thread(
            target=_worker, name="buffalo-seed-prefetch", daemon=True
        )
        worker.start()
        try:
            while True:
                item = q.get()
                if item is _DONE:
                    break
                if (
                    isinstance(item, tuple)
                    and len(item) == 2
                    and item[0] == "error"
                ):
                    raise item[1]
                yield item
        finally:
            stop.set()
            worker.join(timeout=5.0)
