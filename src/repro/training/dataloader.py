"""Seed batching for mini-batch GNN training.

Shuffles the training nodes each epoch and yields fixed-size seed
batches — the standard neighbor-sampling training regime the paper's
systems operate in.  Each batch is then sampled, scheduled, and trained
independently (the Buffalo pipeline runs per batch).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config import rng_from
from repro.errors import ReproError


class SeedBatchLoader:
    """Yields shuffled seed batches of a node set.

    Args:
        nodes: the training node ids.
        batch_size: seeds per batch.
        shuffle: reshuffle every epoch.
        drop_last: drop the final short batch (keeps batch shapes
            comparable across iterations).
        seed: RNG seed; epoch ``e`` uses ``seed + e`` so runs are
            reproducible yet epochs differ.
    """

    def __init__(
        self,
        nodes: np.ndarray,
        batch_size: int,
        *,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        self.nodes = np.asarray(nodes)
        if self.nodes.size == 0:
            raise ReproError("SeedBatchLoader needs at least one node")
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        """Batches per epoch."""
        full, rem = divmod(self.nodes.size, self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[np.ndarray]:
        order = self.nodes
        if self.shuffle:
            rng = rng_from(self.seed + self._epoch)
            order = rng.permutation(self.nodes)
        self._epoch += 1
        for start in range(0, order.size, self.batch_size):
            batch = order[start : start + self.batch_size]
            if batch.size < self.batch_size and self.drop_last:
                return
            yield np.sort(batch)

    @property
    def epochs_served(self) -> int:
        return self._epoch
