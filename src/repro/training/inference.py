"""Layer-wise full-graph inference with bounded memory.

Sampled evaluation (:func:`repro.training.evaluate.evaluate`) is fast
but stochastic.  For exact embeddings/predictions, GNN systems compute
them *layer by layer*: layer ``l``'s output is materialized for every
node (using each node's full neighborhood) before layer ``l + 1`` runs,
so the working set is one node-chunk at a time instead of an L-hop
neighborhood — the standard offline-inference pattern, here with degree
bucketing inside each chunk.
"""

from __future__ import annotations

import numpy as np

from repro.config import FLOAT_DTYPE, INDEX_DTYPE
from repro.datasets.catalog import Dataset
from repro.errors import ReproError
from repro.gnn.block import Block
from repro.gnn.gcn import GCNLayer
from repro.graph.csr import CSRGraph
from repro.graph.subgraph import gather_rows as graph_gather_rows
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad


def _chunk_block(graph: CSRGraph, chunk: np.ndarray) -> Block:
    """A single-layer block: dst = chunk, full (unsampled) neighbors."""
    indptr, flat = graph_gather_rows(graph, chunk)
    position = np.full(graph.n_nodes, -1, dtype=INDEX_DTYPE)
    position[chunk] = np.arange(chunk.size, dtype=INDEX_DTYPE)
    new_nodes = np.unique(flat)
    new_nodes = new_nodes[position[new_nodes] < 0]
    position[new_nodes] = np.arange(
        chunk.size, chunk.size + new_nodes.size, dtype=INDEX_DTYPE
    )
    src_nodes = np.concatenate([chunk, new_nodes])
    indices = position[flat] if flat.size else flat
    return Block(
        src_nodes=src_nodes,
        dst_nodes=chunk,
        indptr=indptr,
        indices=indices,
    )


def full_graph_inference(
    model: Module,
    dataset: Dataset,
    *,
    batch_size: int = 1024,
    device=None,
) -> np.ndarray:
    """Exact model outputs for **every** node of the dataset.

    Args:
        model: a :class:`GraphSAGE` / :class:`GAT` / :class:`GCN` whose
            ``layers`` attribute holds per-layer callables.
        dataset: supplies the graph and input features.
        batch_size: destination nodes materialized per chunk (bounds the
            working set).
        device: optional :class:`~repro.device.SimulatedGPU` whose
            ledger observes the per-chunk working set.

    Returns:
        ``(n_nodes, out_dim)`` array of final-layer outputs (logits).
    """
    if batch_size < 1:
        raise ReproError(f"batch_size must be >= 1, got {batch_size}")
    graph = dataset.graph
    n = graph.n_nodes
    model.eval()

    current = dataset.features.astype(FLOAT_DTYPE, copy=False)
    with no_grad():
        for layer in model.layers:
            outputs: list[np.ndarray] = []
            for start in range(0, n, batch_size):
                chunk = np.arange(
                    start, min(start + batch_size, n), dtype=INDEX_DTYPE
                )
                block = _chunk_block(graph, chunk)
                src_feats = Tensor(
                    current[block.src_nodes], device=device
                )
                cutoff = max(int(block.degrees.max(initial=0)), 1)
                if isinstance(layer, GCNLayer):
                    src_degrees = graph.degrees[block.src_nodes]
                    out = layer(
                        block,
                        src_feats,
                        cutoff,
                        None,
                        src_degrees,
                    )
                else:
                    out = layer(block, src_feats, cutoff)
                outputs.append(out.data)
            current = np.concatenate(outputs, axis=0)
    return current


def full_graph_accuracy(
    model: Module,
    dataset: Dataset,
    nodes: np.ndarray | None = None,
    *,
    batch_size: int = 1024,
) -> float:
    """Exact accuracy over ``nodes`` (default: every node)."""
    logits = full_graph_inference(model, dataset, batch_size=batch_size)
    if nodes is None:
        nodes = np.arange(dataset.n_nodes)
    predictions = logits[nodes].argmax(axis=1)
    return float((predictions == dataset.labels[nodes]).mean())
