"""Model evaluation: inference over sampled blocks and accuracy."""

from __future__ import annotations

import numpy as np

from repro.core.fastblock import generate_blocks_fast
from repro.datasets.catalog import Dataset
from repro.errors import ReproError
from repro.graph.sampling import sample_batch
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.shape[0] != labels.shape[0]:
        raise ReproError(
            f"logits rows ({logits.shape[0]}) must match labels "
            f"({labels.shape[0]})"
        )
    if logits.shape[0] == 0:
        raise ReproError("accuracy of an empty prediction set")
    return float((logits.argmax(axis=1) == labels).mean())


def evaluate(
    model: Module,
    dataset: Dataset,
    nodes: np.ndarray,
    fanouts: list[int],
    *,
    seed: int = 0,
    batch_size: int = 512,
) -> float:
    """Sampled-inference accuracy of ``model`` on ``nodes``.

    Runs under :func:`~repro.tensor.no_grad` (no activation retention),
    in seed batches to bound memory, using the model's own fanouts as
    bucketing cut-offs.
    """
    nodes = np.asarray(nodes)
    if nodes.size == 0:
        raise ReproError("evaluate needs at least one node")
    correct = 0
    cutoffs = list(reversed(fanouts))
    with no_grad():
        for start in range(0, nodes.size, batch_size):
            seeds = np.sort(nodes[start : start + batch_size])
            batch = sample_batch(dataset.graph, seeds, fanouts, rng=seed)
            blocks = generate_blocks_fast(batch)
            feats = Tensor(
                dataset.features[batch.node_map[blocks[0].src_nodes]]
            )
            logits = model(blocks, feats, cutoffs)
            labels = dataset.labels[batch.node_map[blocks[-1].dst_nodes]]
            correct += int((logits.data.argmax(axis=1) == labels).sum())
    return correct / nodes.size
