"""Seeded weight initializers."""

from __future__ import annotations

import numpy as np

from repro.config import FLOAT_DTYPE, rng_from


def xavier_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator | int | None = None,
    *,
    gain: float = 1.0,
) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    rng = rng_from(rng)
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(FLOAT_DTYPE)


def kaiming_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """He uniform: U(-a, a) with a = sqrt(6 / fan_in)."""
    rng = rng_from(rng)
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(FLOAT_DTYPE)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=FLOAT_DTYPE)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out
