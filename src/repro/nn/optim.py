"""Optimizers: SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ReproError
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ReproError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ReproError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ReproError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * p.grad**2
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
