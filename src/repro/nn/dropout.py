"""Inverted dropout."""

from __future__ import annotations

from repro.config import rng_from
from repro.errors import ReproError
from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class Dropout(Module):
    """Inverted dropout: zero with probability ``p``, scale by 1/(1-p).

    Active only in training mode (:meth:`Module.train`); an identity in
    eval mode.  The mask RNG is owned by the layer so runs are
    reproducible given the construction seed.
    """

    def __init__(self, p: float = 0.5, *, seed: int | None = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ReproError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng_from(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (
            self._rng.random(x.shape) < keep
        ).astype(x.data.dtype) / keep
        return x * Tensor(mask, device=x.device)
