"""Affine layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor


class Linear(Module):
    """``y = x @ W + b`` with Xavier-initialized ``W`` of shape
    ``(in_features, out_features)``.

    Args:
        in_features: input width.
        out_features: output width.
        bias: include the additive bias term.
        rng: initializer seed or generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng)
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
