"""Neural-network layers and optimizers over the autograd engine."""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.activations import ELU, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.dropout import Dropout
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "LSTM",
    "LSTMCell",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "ELU",
    "LeakyReLU",
    "Dropout",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "init",
]
