"""Module/Parameter base classes (the ``torch.nn.Module`` substrate)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; modules expose these to optimizers."""

    def __init__(self, data, *, device=None) -> None:
        super().__init__(data, requires_grad=True, device=device)


class Module:
    """Base class with recursive parameter discovery.

    Submodules and parameters are found by attribute inspection, so a
    subclass simply assigns ``self.linear = Linear(...)`` and
    ``parameters()`` finds everything.  Modules start in training mode;
    :meth:`eval` / :meth:`train` toggle it recursively (consumed by
    stochastic layers such as :class:`~repro.nn.dropout.Dropout`).
    """

    #: Training-mode flag (class default; instances override via train()).
    training: bool = True

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every submodule (depth-first)."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its submodules."""
        seen: set[int] = set()
        yield from self._parameters(seen)

    def _parameters(self, seen: set[int]) -> Iterator[Parameter]:
        for value in vars(self).values():
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value._parameters(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item._parameters(seen)
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield item

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.parameters():
            p.grad = None

    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name -> array mapping of all parameters (copied)."""
        out: dict[str, np.ndarray] = {}
        self._state_dict("", out)
        return out

    def _state_dict(self, prefix: str, out: dict[str, np.ndarray]) -> None:
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Parameter):
                out[key] = value.data.copy()
            elif isinstance(value, Module):
                value._state_dict(f"{key}.", out)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._state_dict(f"{key}.{i}.", out)
                    elif isinstance(item, Parameter):
                        out[f"{key}.{i}"] = item.data.copy()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (shapes must match)."""
        current = {}
        self._collect_named(prefix="", out=current)
        for key, array in state.items():
            param = current[key]
            if param.data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {key}: "
                    f"{param.data.shape} vs {array.shape}"
                )
            param.data = array.astype(param.data.dtype).copy()

    def _collect_named(self, prefix: str, out: dict[str, Parameter]) -> None:
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Parameter):
                out[key] = value
            elif isinstance(value, Module):
                value._collect_named(f"{key}.", out)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect_named(f"{key}.{i}.", out)
                    elif isinstance(item, Parameter):
                        out[f"{key}.{i}"] = item

    def to_device(self, device) -> "Module":
        """Register every parameter buffer with a simulated device."""
        for p in self.parameters():
            p.device = device
            if device is not None:
                device.track(p.data)
        return self

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
