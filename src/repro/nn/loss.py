"""Loss modules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.functional import cross_entropy_with_logits
from repro.tensor.tensor import Tensor


class CrossEntropyLoss(Module):
    """Cross entropy over logits with integer targets.

    Args:
        reduction: ``"mean"``, ``"sum"``, or ``"none"``.  Micro-batch
            training uses ``"sum"`` plus an explicit division by the total
            output-node count, so gradient accumulation across bucket
            groups reproduces the full-batch mean exactly (DESIGN.md §5).
    """

    def __init__(self, reduction: str = "mean") -> None:
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy_with_logits(
            logits, targets, reduction=self.reduction
        )


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target_t = target if isinstance(target, Tensor) else Tensor(target)
        diff = prediction - target_t
        return (diff * diff).mean()
