"""LSTM cell and sequence module.

The LSTM aggregator is the paper's flagship memory-intensive aggregator:
per GNN bucket it runs an LSTM over the ``degree``-length neighbor
sequence, storing gate activations for every step — the per-node memory
grows with ``degree * hidden``, which is exactly what makes the explosion
bucket blow past GPU capacity (Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.ops import concat
from repro.tensor.tensor import Tensor


class LSTMCell(Module):
    """A single LSTM step.

    Gates are computed as one fused affine map of ``[x, h]`` into
    ``4 * hidden`` units (i, f, g, o), mirroring cuDNN's fused kernel and
    giving the memory model one well-defined activation per step.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        *,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight = Parameter(
            init.xavier_uniform(
                (input_size + hidden_size, 4 * hidden_size), rng
            )
        )
        self.bias = Parameter(init.zeros((4 * hidden_size,)))

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(n, input)``, state is ``(h, c)``."""
        h_prev, c_prev = state
        fused = concat([x, h_prev], axis=1) @ self.weight + self.bias
        hidden = self.hidden_size
        i = fused[:, 0 * hidden : 1 * hidden].sigmoid()
        f = fused[:, 1 * hidden : 2 * hidden].sigmoid()
        g = fused[:, 2 * hidden : 3 * hidden].tanh()
        o = fused[:, 3 * hidden : 4 * hidden].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c


class LSTM(Module):
    """Run an :class:`LSTMCell` over a ``(n, steps, input)`` sequence.

    Returns the final hidden state ``(n, hidden)`` — the aggregated
    neighbor representation when used as a GNN aggregator.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        *,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor) -> Tensor:
        n, steps, _ = sequence.shape
        device = sequence.device
        h = Tensor(
            np.zeros((n, self.hidden_size), dtype=sequence.dtype),
            device=device,
        )
        c = Tensor(
            np.zeros((n, self.hidden_size), dtype=sequence.dtype),
            device=device,
        )
        for t in range(steps):
            h, c = self.cell(sequence[:, t, :], (h, c))
        return h
