"""Activation modules (thin wrappers over tensor methods)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2) -> None:
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class ELU(Module):
    """ELU via composition: x for x > 0, alpha (e^x - 1) otherwise."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        from repro.tensor.ops import where

        positive = x.data > 0
        return where(positive, x, (x.exp() - 1.0) * self.alpha)
